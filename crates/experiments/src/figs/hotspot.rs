//! Hot-spot analysis (extension): per-line write traffic of each barrier.
//!
//! The paper's Section II-B cites Pfister & Norton's hot-spot result as
//! the reason centralized barriers collapse. The simulator's per-line
//! traffic accounting makes the effect directly visible: SENSE commits
//! essentially *all* of its writes to a single line (concentration ≈ 1),
//! while tree barriers spread theirs across dozens of lines — and every
//! SENSE write invalidates a crowd, where tree writes invalidate at most
//! the one waiting parent.

use std::sync::Arc;

use armbar_core::prelude::*;
use armbar_simcoh::{Arena, SimBuilder};
use armbar_topology::Platform;

use crate::report::Report;
use crate::runner::{topo, Scale};

/// Threads analyzed.
const P: usize = 64;
/// Barrier episodes traced.
const EPISODES: u32 = 10;

/// Per-algorithm traffic profile on ThunderX2.
pub fn run(_scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        format!("Hot-spot analysis — per-line write traffic ({EPISODES} episodes, {P} threads, ThunderX2)"),
        &["algorithm", "lines written", "total writes", "hottest-line share", "invalidations/write", "peak crowd"],
    );
    let t = topo(Platform::ThunderX2);
    for id in [
        AlgorithmId::Sense,
        AlgorithmId::Dissemination,
        AlgorithmId::Mcs,
        AlgorithmId::Tournament,
        AlgorithmId::Stour,
        AlgorithmId::Optimized,
    ] {
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, P, &t));
        let stats = SimBuilder::new(Arc::clone(&t), P)
            .run(move |ctx| {
                for _ in 0..EPISODES {
                    ctx.compute_ns(100.0);
                    barrier.wait(ctx);
                }
            })
            .unwrap();
        let traffic = stats.line_traffic();
        let total_writes: u64 = traffic.values().map(|l| l.writes).sum();
        let total_inv: u64 = traffic.values().map(|l| l.invalidations).sum();
        let peak = traffic.values().map(|l| l.peak_sharers).max().unwrap_or(0);
        r.row(vec![
            id.label().to_string(),
            traffic.len().to_string(),
            total_writes.to_string(),
            format!("{:.0}%", 100.0 * stats.hotspot_concentration()),
            format!("{:.2}", total_inv as f64 / total_writes.max(1) as f64),
            peak.to_string(),
        ]);
    }
    r.note("hottest-line share ≈ 100% = a single hot spot (the centralized");
    r.note("counter); tree barriers spread writes and invalidate ≤ 1 waiter each.");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<String>> {
        run(&Scale::quick()).remove(0).rows
    }

    #[test]
    fn sense_is_a_pure_hot_spot() {
        let rows = rows();
        let sense = rows.iter().find(|r| r[0] == "SENSE").unwrap();
        // Half of SENSE's writes are each thread's private local-sense
        // flip; virtually all *shared* traffic lands on the counter line.
        let share: f64 = sense[3].trim_end_matches('%').parse().unwrap();
        assert!(share > 40.0, "{sense:?}");
        let crowd: u32 = sense[5].parse().unwrap();
        assert!(crowd > P as u32 / 2, "{sense:?}");
    }

    #[test]
    fn optimized_barrier_spreads_its_writes() {
        let rows = rows();
        let opt = rows.iter().find(|r| r[0] == "OPT").unwrap();
        let share: f64 = opt[3].trim_end_matches('%').parse().unwrap();
        assert!(share < 30.0, "{opt:?}");
        let lines: usize = opt[1].parse().unwrap();
        assert!(lines > 40, "{opt:?}");
    }

    #[test]
    fn tree_invalidations_per_write_stay_near_one() {
        let rows = rows();
        for name in ["TOUR", "OPT", "MCS"] {
            let row = rows.iter().find(|r| r[0] == name).unwrap();
            let ipw: f64 = row[4].parse().unwrap();
            assert!(ipw < 3.0, "{row:?}");
        }
    }
}

//! Kilocore projection: every registry barrier on the hierarchical
//! MemPool-style topologies (tiles → groups → cluster) at P ∈ {64, 256,
//! 1024}.
//!
//! The paper measures up to 64 ARMv8 cores; this experiment asks what its
//! algorithm ranking looks like three doublings further out, on a
//! 1024-core single-chip machine modeled after the MemPool manycore (see
//! PAPERS.md). The qualitative expectation from the paper's model: the
//! centralized schemes' hot-spot term grows ~linearly in P and collapses
//! first, while tree/tournament schemes grow with `log P` times the
//! (now deeper) hierarchy's layer latencies.

use armbar_core::prelude::*;
use armbar_sweep::{Job, SweepPool};
use armbar_topology::Platform;

use crate::report::{us, Report};
use crate::runner::{algo_overhead_ns_on, topo, Scale};

/// Thread counts projected, filtered per platform to its core count.
const POINTS: [usize; 3] = [64, 256, 1024];

/// Runs the kilocore projection: one report per platform, all registry
/// algorithms × all applicable thread counts.
pub fn run(scale: &Scale) -> Vec<Report> {
    let pool = SweepPool::ambient();
    Platform::KILOCORE.iter().map(|&platform| run_platform(&pool, platform, scale)).collect()
}

fn run_platform(pool: &SweepPool, platform: Platform, scale: &Scale) -> Report {
    let t = topo(platform);
    let points: Vec<usize> = POINTS.iter().copied().filter(|&p| p <= t.num_cores()).collect();
    let mut r = Report::new(
        format!("Kilocore — barrier overhead on {} (us)", t.name()),
        &["algorithm", "threads", "overhead (us)"],
    );
    // One parallel job per (algorithm, P) point; collection order is the
    // submission order, so the table is deterministic at any worker count.
    // The shyper contenders ride along capped at P ≤ 256: their lock
    // serializes every arrival (with a failed-CAS storm quadratic in P),
    // so the 1024-core point would burn minutes simulating a barrier the
    // model already prices out at a fraction of that scale.
    let cells: Vec<(AlgorithmId, usize)> = AlgorithmId::ALL
        .iter()
        .flat_map(|&id| points.iter().map(move |&p| (id, p)))
        .chain(
            AlgorithmId::CONTENDERS
                .iter()
                .flat_map(|&id| points.iter().filter(|&&p| p <= 256).map(move |&p| (id, p))),
        )
        .collect();
    let jobs = cells
        .iter()
        .map(|&(id, p)| {
            let t = std::sync::Arc::clone(&t);
            Job::parallel(move || algo_overhead_ns_on(pool, &t, p, id, scale))
        })
        .collect();
    for ((id, p), ns) in cells.iter().zip(pool.run(jobs)) {
        r.row(vec![id.label().to_string(), p.to_string(), us(ns)]);
    }
    r.note("hierarchy: 4-core tiles, 64-core groups; MemPool-style NUMA-on-chip;");
    r.note("centralized schemes hot-spot ~linearly in P, trees in log P.");
    r.note("SHY-CTR/SHY-PROXY contender rows are capped at P <= 256 (lock");
    r.note("serialization makes the 1024-point a pure CAS storm).");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smallest meaningful scale: the full 14 × {64,256,1024} grid at the
    /// quick Scale already runs in CI's kilocore-smoke job; the unit test
    /// only pins the report shape and the headline ordering.
    fn tiny() -> Scale {
        Scale { reps: 1, episodes: 2, sweep: vec![] }
    }

    fn overhead(r: &Report, algo: &str, p: &str) -> f64 {
        r.rows
            .iter()
            .find(|row| row[0] == algo && row[1] == p)
            .unwrap_or_else(|| panic!("missing row {algo}/{p}"))[2]
            .parse()
            .unwrap()
    }

    #[test]
    fn kilocore_grid_covers_every_algorithm_and_scale_point() {
        let reports = run(&tiny());
        assert_eq!(reports.len(), 2, "one report per kilocore platform");
        let (r256, r1024) = (&reports[0], &reports[1]);
        assert_eq!(
            r256.rows.len(),
            14 * 2 + 2 * 2,
            "MemPool-256: {{64, 256}} per algorithm + contenders"
        );
        assert_eq!(
            r1024.rows.len(),
            14 * 3 + 2 * 2,
            "MemPool-1024: {{64, 256, 1024}} per algorithm, contenders capped at 256"
        );
        // The contender rows exist at 256 but are deliberately absent at
        // the 1024-core point.
        assert!(r1024.rows.iter().any(|row| row[0] == "SHY-CTR" && row[1] == "256"));
        assert!(!r1024.rows.iter().any(|row| row[0] == "SHY-CTR" && row[1] == "1024"));
        // Every overhead is positive and grows from 64 to the full machine
        // for the centralized scheme (hot-spot growth is the paper's core
        // claim, and it must survive the projection).
        for r in [r256, r1024] {
            assert!(r.rows.iter().all(|row| row[2].parse::<f64>().unwrap() > 0.0));
        }
        let sense64 = overhead(r1024, "SENSE", "64");
        let sense1024 = overhead(r1024, "SENSE", "1024");
        assert!(
            sense1024 > 4.0 * sense64,
            "centralized hot-spot must blow up 64→1024: {sense64} vs {sense1024}"
        );
        // A tournament tree pays log P · layer latency; it must beat the
        // centralized scheme by a wide margin at P=1024.
        let tour1024 = overhead(r1024, "TOUR", "1024");
        assert!(
            tour1024 < sense1024 / 2.0,
            "tree must beat centralized at 1024: {tour1024} vs {sense1024}"
        );
    }
}

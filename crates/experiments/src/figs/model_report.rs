//! Analytical-model report: the Eq. 1/2 optimal fan-in and the Eq. 3/4
//! wake-up comparison, per platform — the numbers Section V derives before
//! the empirical validation of Figures 12 and 13.

use armbar_model::{
    arrival_cost_ns, global_wakeup_ns, optimal_fanin_continuous, optimal_fanin_int,
    recommend_wakeup, tree_wakeup_ns, WakeupChoice,
};
use armbar_topology::{LayerId, Platform};

use crate::report::Report;
use crate::runner::{topo, Scale};

/// Runs the model report (two tables).
pub fn run(_scale: &Scale) -> Vec<Report> {
    let mut fanin = Report::new(
        "Model — Eq. 1/2: Arrival-Phase cost and optimal fan-in (P = 64)",
        &[
            "platform",
            "alpha_0",
            "f* (continuous)",
            "f* (integer)",
            "T(2) ns",
            "T(4) ns",
            "T(8) ns",
        ],
    );
    for platform in Platform::ARM {
        let t = topo(platform);
        let alpha = t.alpha(LayerId(0));
        let l = t.layers()[0].latency_ns;
        fanin.row(vec![
            t.name().to_string(),
            format!("{alpha:.2}"),
            format!("{:.3}", optimal_fanin_continuous(alpha)),
            optimal_fanin_int(&t, 64).to_string(),
            format!("{:.0}", arrival_cost_ns(64, 2, alpha, l)),
            format!("{:.0}", arrival_cost_ns(64, 4, alpha, l)),
            format!("{:.0}", arrival_cost_ns(64, 8, alpha, l)),
        ]);
    }
    fanin.note("paper: (ln f − 1)f = α bounds f* to [2.718, 3.591]; f = 4 preferred");
    fanin.note("as the nearest power of two (cluster alignment).");

    let mut wake = Report::new(
        "Model — Eq. 3/4: Notification-Phase costs and recommendation (P = 64)",
        &["platform", "T_global ns (Eq.3)", "T_tree ns (Eq.4)", "recommended"],
    );
    for platform in Platform::ARM {
        let t = topo(platform);
        let alpha = t.alpha(LayerId(0));
        let l = t.layers()[0].latency_ns;
        let c = t.coherence().read_contention_ns;
        let rec = match recommend_wakeup(&t, 64) {
            WakeupChoice::Global => "global",
            WakeupChoice::Tree => "tree",
        };
        wake.row(vec![
            t.name().to_string(),
            format!("{:.0}", global_wakeup_ns(64, alpha, l, c)),
            format!("{:.0}", tree_wakeup_ns(64, alpha, l)),
            rec.to_string(),
        ]);
    }
    wake.note("recommendation uses the contention-calibrated comparison (see");
    wake.note("armbar-model docs); paper: global on Kunpeng920, tree elsewhere.");

    vec![fanin, wake]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_recommends_paper_wakeups() {
        let reports = run(&Scale::quick());
        let wake = &reports[1];
        let rec: Vec<&str> = wake.rows.iter().map(|r| r[3].as_str()).collect();
        assert_eq!(rec, vec!["tree", "tree", "global"]);
    }

    #[test]
    fn integer_fanin_is_4_everywhere() {
        let reports = run(&Scale::quick());
        for row in &reports[0].rows {
            assert_eq!(row[3], "4", "{row:?}");
        }
    }

    #[test]
    fn continuous_fanin_in_paper_bracket() {
        let reports = run(&Scale::quick());
        for row in &reports[0].rows {
            let f: f64 = row[2].parse().unwrap();
            assert!((std::f64::consts::E..=3.592).contains(&f), "{row:?}");
        }
    }
}

//! Figure 6: barrier overhead of the GNU GCC (a) and LLVM (b) OpenMP
//! implementations versus thread count on the three ARMv8 machines.
//!
//! Expected shapes: GCC grows steeply with threads everywhere (worst on
//! ThunderX2 at full width); LLVM's tree barrier cuts the 64-thread
//! overhead by several times (the paper reports 3× on Phytium 2000+ and
//! 10× on ThunderX2); Kunpeng 920 fluctuates visibly in both.

use armbar_core::prelude::*;
use armbar_topology::Platform;

use crate::report::{us, Report};
use crate::runner::{algo_curve, topo, Scale};

/// Runs Figure 6(a) (GCC) and 6(b) (LLVM).
pub fn run(scale: &Scale) -> Vec<Report> {
    [("a", "GNU GCC", AlgorithmId::Sense), ("b", "LLVM", AlgorithmId::LlvmHyper)]
        .into_iter()
        .map(|(panel, name, id)| {
            let mut r = Report::new(
                format!("Figure 6({panel}) — {name} OpenMP barrier overhead vs threads (us)"),
                &["threads", "Phytium 2000+", "ThunderX2", "Kunpeng920"],
            );
            let curves: Vec<Vec<(usize, f64)>> =
                Platform::ARM.iter().map(|&pf| algo_curve(&topo(pf), id, scale)).collect();
            for (i, &(p, _)) in curves[0].iter().enumerate() {
                r.row(vec![
                    p.to_string(),
                    us(curves[0][i].1),
                    us(curves[1][i].1),
                    us(curves[2][i].1),
                ]);
            }
            r.note(match panel {
                "a" => {
                    "paper: overhead rises with threads; Kunpeng920 fluctuates; \
                        Phytium 2000+ is the best GCC platform at full width"
                }
                _ => {
                    "paper: LLVM reduces the 64-thread overhead by ~3x (Phytium) \
                      and ~10x (ThunderX2) vs GCC"
                }
            });
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcc_grows_and_llvm_beats_it_at_scale() {
        let reports = run(&Scale::quick());
        let (gcc, llvm) = (&reports[0], &reports[1]);
        let last = gcc.rows.len() - 1;
        for col in 1..=3 {
            let g1: f64 = gcc.rows[0][col].parse().unwrap();
            let g64: f64 = gcc.rows[last][col].parse().unwrap();
            assert!(g64 > 4.0 * g1.max(0.05), "GCC must scale poorly (col {col})");
            let l64: f64 = llvm.rows[last][col].parse().unwrap();
            assert!(l64 < g64 / 2.0, "LLVM must clearly beat GCC at 64 (col {col})");
        }
    }
}

//! Table IV: performance improvement of the optimized barrier over the
//! GCC OpenMP barrier, the LLVM OpenMP barrier, and the best-performing
//! state-of-the-art algorithm, at 64 threads.
//!
//! Paper values: vs GCC 8× / 23× / 11× (geomean 12.6×); vs LLVM 2.7× /
//! 2.5× / 9× (4.7×); vs the state of the art 1.7× / 1.8× / 1.4× (1.6×).

use armbar_core::prelude::*;
use armbar_epcc::summary::geomean;
use armbar_topology::Platform;

use crate::report::{speedup, Report};
use crate::runner::{algo_overhead_ns, topo, Scale};

/// Thread count of the table.
const P: usize = 64;

/// One measured speedup row.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Baseline label ("GCC", "LLVM", "state-of-the-art").
    pub baseline: String,
    /// Per-ARM-platform speedups of the optimized barrier, paper order.
    pub per_platform: [f64; 3],
    /// Geometric mean across platforms.
    pub geomean: f64,
}

/// Measures the three Table IV rows. Also returns which existing algorithm
/// won per platform (the "state of the art" is whatever existing algorithm
/// is fastest there, as in the paper).
pub fn measure(scale: &Scale) -> (Vec<SpeedupRow>, Vec<(Platform, AlgorithmId)>) {
    let mut opt = [0.0f64; 3];
    let mut gcc = [0.0f64; 3];
    let mut llvm = [0.0f64; 3];
    let mut best = [0.0f64; 3];
    let mut best_ids = Vec::new();

    for (i, platform) in Platform::ARM.into_iter().enumerate() {
        let t = topo(platform);
        opt[i] = algo_overhead_ns(&t, P, AlgorithmId::Optimized, scale);
        gcc[i] = algo_overhead_ns(&t, P, AlgorithmId::Sense, scale);
        llvm[i] = algo_overhead_ns(&t, P, AlgorithmId::LlvmHyper, scale);
        // Best existing algorithm = the cheapest of the paper's seven plus
        // the LLVM barrier (everything that predates the optimization).
        let (id, v) = AlgorithmId::SEVEN
            .into_iter()
            .chain([AlgorithmId::LlvmHyper])
            .map(|id| (id, algo_overhead_ns(&t, P, id, scale)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        best[i] = v;
        best_ids.push((platform, id));
    }

    let row = |label: &str, base: [f64; 3]| {
        let per: [f64; 3] = std::array::from_fn(|i| base[i] / opt[i]);
        SpeedupRow { baseline: label.to_string(), per_platform: per, geomean: geomean(&per) }
    };
    (vec![row("GCC", gcc), row("LLVM", llvm), row("state-of-the-art", best)], best_ids)
}

/// Runs Table IV.
pub fn run(scale: &Scale) -> Vec<Report> {
    let (rows, best_ids) = measure(scale);
    let mut r = Report::new(
        format!("Table IV — speedup of the optimized barrier at {P} threads"),
        &["baseline", "Phytium 2000+", "ThunderX2", "Kunpeng920", "Geomean"],
    );
    for row in &rows {
        r.row(vec![
            row.baseline.clone(),
            speedup(row.per_platform[0]),
            speedup(row.per_platform[1]),
            speedup(row.per_platform[2]),
            speedup(row.geomean),
        ]);
    }
    for (platform, id) in &best_ids {
        r.note(format!("best existing algorithm on {platform}: {id}"));
    }
    r.note("paper: vs GCC 8x/23x/11x (12.6x); vs LLVM 2.7x/2.5x/9x (4.7x);");
    r.note("vs state-of-the-art 1.7x/1.8x/1.4x (1.6x).");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_barrier_wins_every_comparison() {
        let (rows, _) = measure(&Scale::quick());
        for row in &rows {
            for (i, &s) in row.per_platform.iter().enumerate() {
                assert!(s > 1.0, "{} on platform {i}: speedup {s} ≤ 1", row.baseline);
            }
        }
    }

    #[test]
    fn speedup_ordering_matches_paper() {
        // GCC row >> LLVM row >> state-of-the-art row.
        let (rows, _) = measure(&Scale::quick());
        assert!(rows[0].geomean > rows[1].geomean);
        assert!(rows[1].geomean > rows[2].geomean);
        // Rough magnitudes: GCC ≥ 8x, LLVM ≥ 2x, SOTA ≥ 1.1x geomean.
        assert!(rows[0].geomean >= 8.0, "GCC geomean {}", rows[0].geomean);
        assert!(rows[1].geomean >= 2.0, "LLVM geomean {}", rows[1].geomean);
        assert!(rows[2].geomean >= 1.1, "SOTA geomean {}", rows[2].geomean);
    }

    #[test]
    fn thunderx2_has_the_largest_gcc_speedup() {
        // Paper: 23x on ThunderX2 vs 8x/11x elsewhere.
        let (rows, _) = measure(&Scale::quick());
        let gcc = &rows[0].per_platform;
        assert!(gcc[1] > gcc[0] && gcc[1] > gcc[2], "GCC speedups {gcc:?}");
    }
}

//! Phase breakdown (extension analysis): attributing each barrier
//! episode's cost to the paper's Arrival-Phase and Notification-Phase.
//!
//! The paper optimizes the two phases separately (Sections V-B and V-C);
//! this report shows where the time actually goes in the simulated
//! episodes — e.g. that SENSE is arrival-dominated (the serialized RMW
//! storm) while the optimized barrier splits its much smaller budget
//! roughly evenly, and that switching wake-ups moves only the
//! notification share.

use std::sync::Arc;

use armbar_core::prelude::*;
use armbar_epcc::{phase_breakdown, trace_episodes, OverheadConfig};
use armbar_simcoh::Arena;
use armbar_topology::Platform;

use crate::report::{us, Report};
use crate::runner::{topo, Scale};

/// Thread count analyzed.
const P: usize = 64;

/// Measured episodes in the per-episode trace table.
const TRACE_EPISODES: u32 = 4;

/// Runs the phase-breakdown report plus a per-episode trace table
/// (timings and coherence-op counters for every measured episode).
pub fn run(_scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        format!("Phase breakdown at {P} threads (us)"),
        &["platform", "algorithm", "arrival", "notification", "arrival share"],
    );
    for platform in Platform::ARM {
        let t = topo(platform);
        for id in [
            AlgorithmId::Sense,
            AlgorithmId::Stour,
            AlgorithmId::Padded4Way,
            AlgorithmId::Optimized,
        ] {
            let mut arena = Arena::new();
            let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, P, &t));
            let Some(b) = phase_breakdown(&t, P, barrier, 4).unwrap() else {
                continue;
            };
            r.row(vec![
                t.name().to_string(),
                id.label().to_string(),
                us(b.arrival_ns),
                us(b.notification_ns),
                format!("{:.0}%", 100.0 * b.arrival_ns / b.total_ns()),
            ]);
        }
    }
    r.note("arrival = last entry → champion sees the last arrival;");
    r.note("notification = champion's release → last thread leaves.");
    vec![r, episode_trace_report()]
}

/// Per-episode trace of SENSE vs. the optimized barrier: where the paper's
/// headline speedup comes from, episode by episode — SENSE pays thousands
/// of RFO invalidations and write stalls per episode, OPT a few hundred.
fn episode_trace_report() -> Report {
    let mut r = Report::new(
        format!("Per-episode trace at {P} threads"),
        &[
            "platform",
            "algorithm",
            "episode",
            "arrival",
            "notification",
            "remote reads",
            "RFO invals",
            "stalls",
            "wakeups",
        ],
    );
    for platform in Platform::ARM {
        let t = topo(platform);
        for id in [AlgorithmId::Sense, AlgorithmId::Optimized] {
            let mut arena = Arena::new();
            let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, P, &t));
            let cfg = OverheadConfig { episodes: TRACE_EPISODES, ..OverheadConfig::default() };
            let traces = trace_episodes(&t, P, barrier, cfg).unwrap();
            for tr in &traces {
                let c = &tr.counters;
                r.row(vec![
                    t.name().to_string(),
                    id.label().to_string(),
                    tr.episode.to_string(),
                    tr.arrival_ns().map(us).unwrap_or_default(),
                    tr.notification_ns().map(us).unwrap_or_default(),
                    c.remote_reads.to_string(),
                    c.rfo_invalidations.to_string(),
                    (c.read_stalls + c.write_stalls).to_string(),
                    c.spin_wakeups.to_string(),
                ]);
            }
        }
    }
    r.note("times in us; counters are machine-wide deltas attributed per episode.");
    r.note("same data as `armbar trace --format csv`, for the report archive.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_platforms_and_marked_algorithms() {
        let r = &run(&Scale::quick())[0];
        assert_eq!(r.rows.len(), 12); // 3 platforms × 4 marked algorithms
    }

    #[test]
    fn episode_trace_table_shows_opt_doing_less_coherence_work() {
        let r = episode_trace_report();
        // 3 platforms × 2 algorithms × TRACE_EPISODES episodes.
        assert_eq!(r.rows.len(), 3 * 2 * TRACE_EPISODES as usize);
        for platform in ["Phytium 2000+", "ThunderX2", "Kunpeng920"] {
            let invals = |alg: &str| -> u64 {
                r.rows
                    .iter()
                    .filter(|row| row[0] == platform && row[1] == alg)
                    .map(|row| row[6].parse::<u64>().unwrap())
                    .sum()
            };
            assert!(
                invals("SENSE") > invals("OPT"),
                "{platform}: SENSE {} vs OPT {}",
                invals("SENSE"),
                invals("OPT")
            );
        }
    }

    #[test]
    fn sense_is_arrival_dominated_everywhere() {
        let r = &run(&Scale::quick())[0];
        for row in r.rows.iter().filter(|row| row[1] == "SENSE") {
            let share: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(share > 55.0, "{row:?}");
        }
    }

    #[test]
    fn optimized_total_is_far_below_sense_total() {
        let r = &run(&Scale::quick())[0];
        for platform in ["Phytium 2000+", "ThunderX2", "Kunpeng920"] {
            let total = |alg: &str| -> f64 {
                let row = r.rows.iter().find(|row| row[0] == platform && row[1] == alg).unwrap();
                row[2].parse::<f64>().unwrap() + row[3].parse::<f64>().unwrap()
            };
            assert!(total("SENSE") > 4.0 * total("OPT"), "{platform}");
        }
    }
}

//! Experiment implementations (one module per table/figure of the paper).
//!
//! Each `run(&Scale)` returns one [`crate::Report`] per panel of the paper
//! artifact, so the binaries stay one-line wrappers and the integration
//! tests can execute the identical pipeline at [`crate::Scale::quick`].

pub mod ablations;
pub mod churn;
pub mod crossover;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod hotspot;
pub mod kilocore;
pub mod model_report;
pub mod phase_breakdown;
pub mod table4;
pub mod tables_1_2_3;

//! Ablation studies beyond the paper's figures, quantifying the design
//! choices DESIGN.md calls out:
//!
//! 1. **SENSE layout** — how much of the centralized barrier's collapse is
//!    the libgomp-style packing of counter and generation word into one
//!    cache line (spinner crowd invalidated by every arrival), versus the
//!    inherent serialization of a single hot counter?
//! 2. **Padding × fan-in interaction** — is the fixed fan-in 4 still the
//!    right choice *without* padding (the paper only sweeps padded)?
//! 3. **HYBRID extension** — does the related-work hybrid design
//!    (per-cluster counters + tournament of representatives) beat the
//!    paper's optimized barrier on any modeled machine?

use armbar_core::prelude::*;
use armbar_core::{HybridBarrier, SenseBarrier};
use armbar_epcc::sim_overhead_of;
use armbar_simcoh::Arena;
use armbar_topology::Platform;
use std::sync::Arc;

use crate::report::{us, Report};
use crate::runner::{algo_overhead_ns, fway_overhead_ns, topo, Scale};

/// Runs the three ablation reports.
pub fn run(scale: &Scale) -> Vec<Report> {
    vec![sense_layout(scale), padding_fanin(scale), hybrid(scale)]
}

/// Ablation 1: SENSE with counter+sense packed (libgomp) vs separated.
fn sense_layout(scale: &Scale) -> Report {
    let mut r = Report::new(
        "Ablation — SENSE flag layout (us)",
        &["platform", "threads", "packed (libgomp)", "separate lines", "packing cost"],
    );
    for platform in Platform::ARM {
        let t = topo(platform);
        for p in [16usize, 32, 64] {
            let packed = {
                let mut arena = Arena::new();
                let b: Arc<dyn Barrier> = Arc::new(SenseBarrier::gcc_style(&mut arena, p, &t));
                sim_overhead_of(&t, p, b, scale.cfg(0)).unwrap()
            };
            let separate = {
                let mut arena = Arena::new();
                let b: Arc<dyn Barrier> = Arc::new(SenseBarrier::separate_lines(&mut arena, p, &t));
                sim_overhead_of(&t, p, b, scale.cfg(0)).unwrap()
            };
            r.row(vec![
                t.name().to_string(),
                p.to_string(),
                us(packed),
                us(separate),
                format!("{:.2}x", packed / separate),
            ]);
        }
    }
    r.note("separating the generation word from the counter removes the");
    r.note("arrival-invalidates-spinners false sharing but not the hot counter.");
    r
}

/// Ablation 2: fan-in 4 with and without padding, against fan-in 8.
fn padding_fanin(scale: &Scale) -> Report {
    let mut r = Report::new(
        "Ablation — padding x fan-in interaction at 64 threads (us)",
        &["platform", "packed f=4", "padded f=4", "packed f=8", "padded f=8"],
    );
    for platform in Platform::ARM {
        let t = topo(platform);
        let cell = |f: usize, padded: bool| {
            fway_overhead_ns(
                &t,
                64,
                FwayConfig { fanin: Fanin::Fixed(f), padded_flags: padded, ..FwayConfig::stour() },
                scale,
            )
        };
        r.row(vec![
            t.name().to_string(),
            us(cell(4, false)),
            us(cell(4, true)),
            us(cell(8, false)),
            us(cell(8, true)),
        ]);
    }
    r.note("padding and the fan-in choice compose: 4 stays optimal in both");
    r.note("layouts, and padding helps more at the wider fan-in (more siblings");
    r.note("share a line when packed).");
    r
}

/// Ablation 3: the HYBRID extension vs the paper's optimized barrier.
fn hybrid(scale: &Scale) -> Report {
    let mut r = Report::new(
        "Ablation — HYBRID (cluster counters + tournament) vs OPT at 64 threads (us)",
        &["platform", "HYBRID", "OPT", "TOUR", "verdict"],
    );
    for platform in Platform::ARM {
        let t = topo(platform);
        let hybrid = {
            let mut arena = Arena::new();
            let b: Arc<dyn Barrier> = Arc::new(HybridBarrier::new(&mut arena, 64, &t));
            sim_overhead_of(&t, 64, b, scale.cfg(0)).unwrap()
        };
        let opt = algo_overhead_ns(&t, 64, AlgorithmId::Optimized, scale);
        let tour = algo_overhead_ns(&t, 64, AlgorithmId::Tournament, scale);
        let verdict = if hybrid < opt { "HYBRID wins" } else { "OPT wins" };
        r.row(vec![t.name().to_string(), us(hybrid), us(opt), us(tour), verdict.to_string()]);
    }
    r.note("the hybrid replaces the static intra-cluster rounds with one atomic");
    r.note("counter per cluster; the atomics surcharge usually cancels the");
    r.note("level it saves.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_packing_costs_extra() {
        let r = sense_layout(&Scale::quick());
        // At 64 threads the packed layout must be at least as expensive.
        for row in r.rows.iter().filter(|row| row[1] == "64") {
            let ratio: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(ratio >= 1.0, "{row:?}");
        }
    }

    #[test]
    fn padding_helps_in_both_fanins() {
        let r = padding_fanin(&Scale::quick());
        for row in &r.rows {
            let packed4: f64 = row[1].parse().unwrap();
            let padded4: f64 = row[2].parse().unwrap();
            assert!(padded4 <= packed4 * 1.02, "{row:?}");
        }
    }

    #[test]
    fn hybrid_is_competitive_but_not_reported_as_winner_blindly() {
        let r = hybrid(&Scale::quick());
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            let h: f64 = row[1].parse().unwrap();
            let tour: f64 = row[3].parse().unwrap();
            // The extension must at least be in the same class as TOUR.
            assert!(h < tour * 2.0, "{row:?}");
        }
    }
}

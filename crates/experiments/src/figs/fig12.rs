//! Figure 12: Notification-Phase comparison — global sense versus binary
//! tree versus the paper's NUMA-aware tree wake-up, on the padded 4-way
//! arrival base.
//!
//! Expected (Section VI-B): the three curves coincide at small thread
//! counts (within one cluster the NUMA tree *is* the binary tree, and a
//! global flip among a handful of threads is as cheap as a tree hop);
//! at scale, tree wake-ups win on Phytium 2000+ and ThunderX2 while the
//! global flip wins on Kunpeng 920; the NUMA-aware tree is the most
//! scalable tree variant on the clustered machines.

use armbar_core::prelude::*;
use armbar_topology::Platform;

use crate::report::{us, Report};
use crate::runner::{fway_curve, topo, Scale};

/// The three wake-up policies on the padded 4-way arrival base.
pub fn configs() -> [(&'static str, FwayConfig); 3] {
    let base = FwayConfig {
        fanin: Fanin::Fixed(4),
        padded_flags: true,
        dynamic: false,
        wakeup: WakeupKind::Global,
    };
    [
        ("global", base),
        ("binary tree", FwayConfig { wakeup: WakeupKind::BinaryTree, ..base }),
        ("NUMA-aware tree", FwayConfig { wakeup: WakeupKind::NumaTree, ..base }),
    ]
}

/// Runs Figure 12(a)–(c), one report per ARMv8 platform.
pub fn run(scale: &Scale) -> Vec<Report> {
    ["a", "b", "c"]
        .into_iter()
        .zip(Platform::ARM)
        .map(|(panel, platform)| {
            let t = topo(platform);
            let mut r = Report::new(
                format!("Figure 12({panel}) — wake-up methods on {} (us)", t.name()),
                &["threads", "global", "binary tree", "NUMA-aware tree"],
            );
            let curves: Vec<Vec<(usize, f64)>> =
                configs().iter().map(|(_, c)| fway_curve(&t, *c, scale)).collect();
            for i in 0..curves[0].len() {
                let mut row = vec![curves[0][i].0.to_string()];
                row.extend(curves.iter().map(|c| us(c[i].1)));
                r.row(row);
            }
            r.note("paper: tree wake-ups win on Phytium 2000+/ThunderX2, global on");
            r.note("Kunpeng920; curves coincide while the thread count stays within N_c.");
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::fway_overhead_ns;

    #[test]
    fn tree_wakeup_wins_on_phytium_and_thunderx2() {
        let scale = Scale::quick();
        let cfgs = configs();
        for platform in [Platform::Phytium2000Plus, Platform::ThunderX2] {
            let t = topo(platform);
            let global = fway_overhead_ns(&t, 64, cfgs[0].1, &scale);
            let numa = fway_overhead_ns(&t, 64, cfgs[2].1, &scale);
            assert!(numa < global, "{platform:?}: numa {numa} vs global {global}");
        }
    }

    #[test]
    fn global_wakeup_wins_on_kunpeng() {
        let scale = Scale::quick();
        let cfgs = configs();
        let t = topo(Platform::Kunpeng920);
        let global = fway_overhead_ns(&t, 64, cfgs[0].1, &scale);
        let binary = fway_overhead_ns(&t, 64, cfgs[1].1, &scale);
        assert!(global < binary, "global {global} vs binary {binary}");
    }

    #[test]
    fn numa_tree_beats_binary_tree_at_scale_on_thunderx2() {
        let scale = Scale::quick();
        let cfgs = configs();
        let t = topo(Platform::ThunderX2);
        let binary = fway_overhead_ns(&t, 64, cfgs[1].1, &scale);
        let numa = fway_overhead_ns(&t, 64, cfgs[2].1, &scale);
        assert!(numa < binary, "numa {numa} vs binary {binary}");
    }

    #[test]
    fn policies_coincide_within_one_cluster() {
        // On ThunderX2 (N_c = 32) a 16-thread barrier never leaves the
        // socket: the NUMA tree equals the binary tree by construction.
        let scale = Scale::quick();
        let cfgs = configs();
        let t = topo(Platform::ThunderX2);
        let binary = fway_overhead_ns(&t, 16, cfgs[1].1, &scale);
        let numa = fway_overhead_ns(&t, 16, cfgs[2].1, &scale);
        let rel = (binary - numa).abs() / binary.max(numa);
        assert!(rel < 0.05, "binary {binary} vs numa {numa} should coincide");
    }
}

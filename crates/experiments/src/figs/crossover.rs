//! Lock-counter vs SENSE/STOUR crossover — model prediction against
//! simulation (DESIGN.md §17).
//!
//! The shyper contender barriers (`SHY-CTR`, `SHY-PROXY`) pay the
//! platform's CAS/SWP pricing per arrival where SENSE pays one fetch-add
//! and STOUR pays no atomics at all. With the per-op-kind cost split the
//! analytical model predicts, per ARM platform, the thread count at which
//! the lock-guarded counter loses to the best no-lock barrier; this
//! experiment measures the same four curves in the simulator and reports
//! both verdicts side by side. The model-vs-sim validation test (and the
//! CI `crossover-smoke` job) require the two crossover indices to agree
//! within one sweep step.

use armbar_core::prelude::*;
use armbar_model::crossover as model;
use armbar_topology::Platform;

use crate::report::{us, Report};
use crate::runner::{algo_overhead_ns, topo, Scale};

/// The four curves measured and predicted, in column order.
const CURVES: [AlgorithmId; 4] =
    [AlgorithmId::ShyCtr, AlgorithmId::ShyProxy, AlgorithmId::Sense, AlgorithmId::Stour];

/// Measured sim curves for one platform over `grid`: per point, the mean
/// overhead of each of [`CURVES`].
fn sim_curves(platform: Platform, grid: &[usize], scale: &Scale) -> Vec<(usize, [f64; 4])> {
    let t = topo(platform);
    grid.iter()
        .map(|&p| {
            let mut ns = [0.0; 4];
            for (slot, id) in ns.iter_mut().zip(CURVES) {
                *slot = algo_overhead_ns(&t, p, id, scale);
            }
            (p, ns)
        })
        .collect()
}

/// Index into the grid of the first point where the measured `SHY-CTR`
/// overhead exceeds the best measured no-lock reference.
pub fn sim_crossover_index(curves: &[(usize, [f64; 4])]) -> Option<usize> {
    curves.iter().position(|&(_, [shy_ctr, _, sense, stour])| shy_ctr > sense.min(stour))
}

/// The crossover sweep grid: the scale's thread sweep without the trivial
/// `p = 1` point (every barrier is free there, so it can never order the
/// curves).
pub fn grid(scale: &Scale) -> Vec<usize> {
    scale.sweep.iter().copied().filter(|&p| p >= 2).collect()
}

/// Per-platform curve reports plus a crossover summary report (last).
pub fn run(scale: &Scale) -> Vec<Report> {
    let grid = grid(scale);
    let mut reports = Vec::new();
    let mut summary = Report::new(
        "Lock-counter crossover — model prediction vs simulation",
        &["platform", "model crossover P", "sim crossover P", "|Δ| steps", "within 1 step"],
    );
    for platform in Platform::ARM {
        let t = topo(platform);
        let sim = sim_curves(platform, &grid, scale);
        let predicted = model::predicted_curves(&t, &grid);
        let mut r = Report::new(
            format!("Contender curves — {} ({} reps)", t.name(), scale.reps),
            &[
                "threads",
                "SHY-CTR sim",
                "SHY-PROXY sim",
                "SENSE sim",
                "STOUR sim",
                "SHY-CTR model",
                "SENSE model",
                "STOUR model",
            ],
        );
        for (&(p, sim_ns), pred) in sim.iter().zip(&predicted) {
            r.row(vec![
                p.to_string(),
                us(sim_ns[0]),
                us(sim_ns[1]),
                us(sim_ns[2]),
                us(sim_ns[3]),
                us(pred.shy_ctr_ns),
                us(pred.sense_ns),
                us(pred.stour_ns),
            ]);
        }
        r.note("sim = measured mean overhead; model = closed-form episode cost");
        r.note("(DESIGN.md §17). Absolute scales differ; the crossover ordering");
        r.note("is the claim under test.");
        reports.push(r);

        let model_idx = model::predicted_crossover_index(&t, &grid);
        let sim_idx = sim_crossover_index(&sim);
        let fmt = |idx: Option<usize>| match idx {
            Some(i) => grid[i].to_string(),
            None => "never".to_string(),
        };
        let (delta, ok) = match (model_idx, sim_idx) {
            (Some(m), Some(s)) => {
                let d = m.abs_diff(s);
                (d.to_string(), d <= 1)
            }
            (None, None) => ("0".to_string(), true),
            _ => ("∞".to_string(), false),
        };
        summary.row(vec![
            t.name().to_string(),
            fmt(model_idx),
            fmt(sim_idx),
            delta,
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    summary.note("crossover P = first swept thread count where SHY-CTR costs more");
    summary.note("than min(SENSE, STOUR); the per-op-kind model must land within");
    summary.note("one sweep step of the simulator on every ARM platform.");
    reports.push(summary);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite 2: per ARM platform, the model-predicted crossover lands
    /// within one sweep step of the simulated crossover (tolerance
    /// documented in DESIGN.md §17).
    #[test]
    fn model_crossover_matches_sim_within_one_step() {
        let scale = Scale::quick();
        let grid = grid(&scale);
        for platform in Platform::ARM {
            let t = topo(platform);
            let sim = sim_curves(platform, &grid, &scale);
            let model_idx = model::predicted_crossover_index(&t, &grid)
                .unwrap_or_else(|| panic!("{platform}: model predicts no crossover"));
            let sim_idx = sim_crossover_index(&sim)
                .unwrap_or_else(|| panic!("{platform}: sim shows no crossover: {sim:?}"));
            assert!(
                model_idx.abs_diff(sim_idx) <= 1,
                "{platform}: model crossover at grid[{model_idx}]={}, \
                 sim at grid[{sim_idx}]={} — more than one sweep step apart\n{sim:?}",
                grid[model_idx],
                grid[sim_idx],
            );
        }
    }

    #[test]
    fn summary_report_flags_every_platform_within_tolerance() {
        let reports = run(&Scale::quick());
        assert_eq!(reports.len(), 4, "3 platform reports + summary");
        let summary = reports.last().unwrap();
        assert_eq!(summary.rows.len(), 3);
        for row in &summary.rows {
            assert_eq!(row[4], "yes", "{row:?}");
        }
    }

    #[test]
    fn grid_drops_the_trivial_point() {
        assert_eq!(grid(&Scale::quick()), vec![4, 16, 64]);
    }
}

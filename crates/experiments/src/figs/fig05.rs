//! Figure 5: OpenMP barrier overhead (µs) of the GCC and LLVM
//! implementations at 32 threads on the three ARMv8 machines and the Intel
//! Xeon Gold reference.
//!
//! The paper's headline motivation: ~2 µs on the Xeon versus up to ~16 µs
//! (GCC on ThunderX2) — an 8× slowdown on comparable clock speeds.

use armbar_core::prelude::*;
use armbar_topology::Platform;

use crate::report::{us, Report};
use crate::runner::{algo_overhead_ns, topo, Scale};

/// Thread count of the figure.
const P: usize = 32;

/// Runs the Figure 5 comparison.
pub fn run(scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        format!("Figure 5 — GCC vs LLVM barrier overhead at {P} threads (us)"),
        &["platform", "GCC (us)", "LLVM (us)", "GCC vs Xeon"],
    );
    let xeon_gcc = algo_overhead_ns(&topo(Platform::XeonGold), P, AlgorithmId::Sense, scale);
    for platform in Platform::ALL {
        let t = topo(platform);
        let gcc = algo_overhead_ns(&t, P, AlgorithmId::Sense, scale);
        let llvm = algo_overhead_ns(&t, P, AlgorithmId::LlvmHyper, scale);
        r.row(vec![t.name().to_string(), us(gcc), us(llvm), format!("{:.1}x", gcc / xeon_gcc)]);
    }
    r.note("paper: Intel ~2 us; ThunderX2 GCC ~16 us (8x the Intel platform);");
    r.note("LLVM (tree barrier) consistently below GCC (centralized) on ARMv8.");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(r: &Report, row: usize, col: usize) -> f64 {
        r.rows[row][col].trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn arm_gcc_is_slower_than_xeon_and_llvm_helps() {
        let r = &run(&Scale::quick())[0];
        assert_eq!(r.rows.len(), 4);
        // Rows: Phytium, ThunderX2, Kunpeng920, Xeon.
        let xeon_gcc = cell(r, 3, 1);
        for arm in 0..3 {
            let gcc = cell(r, arm, 1);
            assert!(gcc > 2.0 * xeon_gcc, "{}: GCC {gcc} vs Xeon {xeon_gcc}", r.rows[arm][0]);
            let llvm = cell(r, arm, 2);
            assert!(llvm < gcc, "{}: LLVM must beat GCC", r.rows[arm][0]);
        }
        // ThunderX2 is the worst GCC platform (paper: 8x slowdown).
        let tx2_ratio = cell(r, 1, 3);
        assert!(tx2_ratio > 4.0, "ThunderX2 ratio {tx2_ratio}");
    }
}

//! Figure 11: Arrival-Phase optimizations — the original static f-way
//! tournament versus flag padding and the fixed fan-in of 4.
//!
//! Three configurations per platform (Section VI-A):
//! * "static f-way" — balanced fan-ins, packed 32-bit flags (STOUR);
//! * "padding static f-way" — same schedule, one cache line per flag;
//! * "padding static 4-way" — padded flags and fixed fan-in 4.
//!
//! Expected: padding always helps (up to ~1.35× on Kunpeng 920, whose
//! larger lines pack more flags and hence conflict more); the balanced
//! schedule's variable fan-in makes overhead fluctuate with the thread
//! count, which the fixed 4-way smooths out and beats.

use armbar_core::prelude::*;
use armbar_topology::Platform;

use crate::report::{us, Report};
use crate::runner::{fway_curve, topo, Scale};

/// The three Figure 11 configurations, in figure order.
pub fn configs() -> [(&'static str, FwayConfig); 3] {
    [
        ("static f-way", FwayConfig::stour()),
        ("padding static f-way", FwayConfig { padded_flags: true, ..FwayConfig::stour() }),
        (
            "padding static 4-way",
            FwayConfig { fanin: Fanin::Fixed(4), padded_flags: true, ..FwayConfig::stour() },
        ),
    ]
}

/// Runs Figure 11(a)–(c), one report per ARMv8 platform.
pub fn run(scale: &Scale) -> Vec<Report> {
    ["a", "b", "c"]
        .into_iter()
        .zip(Platform::ARM)
        .map(|(panel, platform)| {
            let t = topo(platform);
            let mut r = Report::new(
                format!("Figure 11({panel}) — arrival-phase variants on {} (us)", t.name()),
                &["threads", "static f-way", "padding static f-way", "padding static 4-way"],
            );
            let curves: Vec<Vec<(usize, f64)>> =
                configs().iter().map(|(_, c)| fway_curve(&t, *c, scale)).collect();
            for i in 0..curves[0].len() {
                let mut row = vec![curves[0][i].0.to_string()];
                row.extend(curves.iter().map(|c| us(c[i].1)));
                r.row(row);
            }
            r.note("paper: padding helps everywhere (up to 1.35x on Kunpeng920);");
            r.note("fixed fan-in 4 removes the balanced schedule's fluctuation.");
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::fway_overhead_ns;

    #[test]
    fn padding_helps_at_full_width() {
        let scale = Scale::quick();
        let cfgs = configs();
        for platform in Platform::ARM {
            let t = topo(platform);
            let packed = fway_overhead_ns(&t, 64, cfgs[0].1, &scale);
            let padded = fway_overhead_ns(&t, 64, cfgs[1].1, &scale);
            assert!(padded < packed, "{platform:?}: padded {padded} vs packed {packed}");
        }
    }

    #[test]
    fn padded_4way_beats_padded_fway_at_full_width() {
        let scale = Scale::quick();
        let cfgs = configs();
        for platform in Platform::ARM {
            let t = topo(platform);
            let fway = fway_overhead_ns(&t, 64, cfgs[1].1, &scale);
            let four = fway_overhead_ns(&t, 64, cfgs[2].1, &scale);
            assert!(four <= fway * 1.05, "{platform:?}: 4-way {four} vs f-way {fway}");
        }
    }

    #[test]
    fn kunpeng_padding_gain_is_largest() {
        // The paper attributes the biggest padding speedup to Kunpeng 920's
        // wider cache lines (more flags per line → more conflicts).
        let scale = Scale::quick();
        let cfgs = configs();
        let gain = |pf: Platform| {
            let t = topo(pf);
            fway_overhead_ns(&t, 64, cfgs[0].1, &scale)
                / fway_overhead_ns(&t, 64, cfgs[1].1, &scale)
        };
        let kp = gain(Platform::Kunpeng920);
        assert!(kp > 1.1, "Kunpeng padding gain {kp}");
    }

    #[test]
    fn three_panels_produced() {
        let reports = run(&Scale::quick());
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.columns.len(), 4);
        }
    }
}

//! Sweep runners shared by all experiments.
//!
//! Every sweep point is an independent simulation (a pure function of
//! `(topology, seed, program)`), so the curve runners fan their points out
//! over the ambient [`SweepPool`] — `--jobs`/`ARMBAR_JOBS` workers —
//! while collecting results in submission order. Output is byte-identical
//! to the serial path at any worker count.
//!
//! Below the pool, each worker keeps an ambient `armbar_simcoh::SimTeam`:
//! the P simulated-thread workers of an episode are spawned once per
//! (worker, P) and reused across every rep and sweep point, which is a
//! large share of the post-overhaul `all_experiments --quick` speedup
//! (see DESIGN.md §11).

use std::sync::Arc;

use armbar_core::prelude::*;
use armbar_epcc::{repeat_sim_of_on, repeat_sim_on, OverheadConfig};
use armbar_sweep::{Job, SweepPool};
use armbar_topology::{Platform, Topology};

/// Experiment scale: full (paper-faithful) for the binaries, reduced for
/// integration tests.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Independently seeded repetitions per point (paper: 20).
    pub reps: u64,
    /// Measured barrier episodes per run.
    pub episodes: u32,
    /// Thread counts swept by the "vs. threads" figures.
    pub sweep: Vec<usize>,
}

impl Scale {
    /// Paper-faithful scale (bounded to keep a full regeneration in
    /// minutes: 10 reps instead of the paper's 20; the simulator's noise
    /// comes only from seeded jitter, so fewer reps suffice).
    pub fn full() -> Self {
        Self {
            reps: 10,
            episodes: 40,
            sweep: vec![1, 2, 3, 4, 5, 6, 8, 9, 12, 16, 17, 20, 24, 32, 33, 40, 48, 56, 64],
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        Self { reps: 2, episodes: 10, sweep: vec![1, 4, 16, 64] }
    }

    /// The measurement configuration for rep `r`, on the workspace-wide
    /// seed schedule ([`armbar_epcc::SEED_STRIDE`]) shared by every
    /// repeated-measurement path — registry algorithms and custom barrier
    /// configurations see identical per-rep seeds.
    pub fn cfg(&self, rep: u64) -> OverheadConfig {
        OverheadConfig { warmup: 4, episodes: self.episodes, delay_ns: 100.0, seed: 0x5EED }
            .rep(rep)
    }
}

/// Shared topology handles (constructing one per call is cheap, but the
/// sweeps reuse them for clarity).
pub fn topo(platform: Platform) -> Arc<Topology> {
    Arc::new(Topology::preset(platform))
}

/// Mean overhead (ns) of a registry algorithm at `p` threads over
/// `scale.reps` repetitions.
pub fn algo_overhead_ns(topo: &Arc<Topology>, p: usize, id: AlgorithmId, scale: &Scale) -> f64 {
    algo_overhead_ns_on(&SweepPool::ambient(), topo, p, id, scale)
}

/// [`algo_overhead_ns`] on an explicit pool.
pub fn algo_overhead_ns_on(
    pool: &SweepPool,
    topo: &Arc<Topology>,
    p: usize,
    id: AlgorithmId,
    scale: &Scale,
) -> f64 {
    repeat_sim_on(pool, topo, p, id, scale.cfg(0), scale.reps)
        .unwrap_or_else(|e| panic!("{id} at p={p} on {}: {e}", topo.name()))
        .mean
}

/// Mean overhead (ns) of a custom f-way configuration at `p` threads, on
/// the same seed schedule as the registry path.
pub fn fway_overhead_ns(topo: &Arc<Topology>, p: usize, config: FwayConfig, scale: &Scale) -> f64 {
    fway_overhead_ns_on(&SweepPool::ambient(), topo, p, config, scale)
}

/// [`fway_overhead_ns`] on an explicit pool.
pub fn fway_overhead_ns_on(
    pool: &SweepPool,
    topo: &Arc<Topology>,
    p: usize,
    config: FwayConfig,
    scale: &Scale,
) -> f64 {
    repeat_sim_of_on(
        pool,
        topo,
        p,
        |arena| Arc::new(FwayBarrier::with_config(arena, p, topo, config)),
        scale.cfg(0),
        scale.reps,
    )
    .unwrap_or_else(|e| panic!("fway {config:?} at p={p}: {e}"))
    .mean
}

/// An overhead-vs-threads curve for a registry algorithm.
pub fn algo_curve(topo: &Arc<Topology>, id: AlgorithmId, scale: &Scale) -> Vec<(usize, f64)> {
    algo_curve_on(&SweepPool::ambient(), topo, id, scale)
}

/// [`algo_curve`] on an explicit pool: one parallel job per sweep point
/// (repetitions inside a point run inline on that point's worker).
pub fn algo_curve_on(
    pool: &SweepPool,
    topo: &Arc<Topology>,
    id: AlgorithmId,
    scale: &Scale,
) -> Vec<(usize, f64)> {
    let points: Vec<usize> =
        scale.sweep.iter().copied().filter(|&p| p <= topo.num_cores()).collect();
    let jobs = points
        .iter()
        .map(|&p| Job::parallel(move || algo_overhead_ns_on(pool, topo, p, id, scale)))
        .collect();
    points.iter().copied().zip(pool.run(jobs)).collect()
}

/// An overhead-vs-threads curve for a custom f-way configuration.
pub fn fway_curve(topo: &Arc<Topology>, config: FwayConfig, scale: &Scale) -> Vec<(usize, f64)> {
    fway_curve_on(&SweepPool::ambient(), topo, config, scale)
}

/// [`fway_curve`] on an explicit pool.
pub fn fway_curve_on(
    pool: &SweepPool,
    topo: &Arc<Topology>,
    config: FwayConfig,
    scale: &Scale,
) -> Vec<(usize, f64)> {
    let points: Vec<usize> =
        scale.sweep.iter().copied().filter(|&p| p <= topo.num_cores()).collect();
    let jobs = points
        .iter()
        .map(|&p| Job::parallel(move || fway_overhead_ns_on(pool, topo, p, config, scale)))
        .collect();
    points.iter().copied().zip(pool.run(jobs)).collect()
}

/// Directory where the binaries drop CSVs (workspace `results/`).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_runs_a_curve() {
        let t = topo(Platform::ThunderX2);
        let curve = algo_curve(&t, AlgorithmId::Tournament, &Scale::quick());
        assert_eq!(curve.len(), 4);
        assert!(curve.iter().all(|&(_, ns)| ns >= 0.0));
        // Larger thread counts cost more for any real barrier.
        assert!(curve.last().unwrap().1 > curve.first().unwrap().1);
    }

    #[test]
    fn sweep_respects_core_count() {
        let t = topo(Platform::XeonGold); // 32 cores
        let curve = algo_curve(&t, AlgorithmId::Sense, &Scale::quick());
        assert!(curve.iter().all(|&(p, _)| p <= 32));
    }

    #[test]
    fn fway_runner_accepts_custom_configs() {
        let t = topo(Platform::Kunpeng920);
        let ns = fway_overhead_ns(
            &t,
            16,
            FwayConfig { fanin: Fanin::Fixed(4), ..FwayConfig::stour() },
            &Scale::quick(),
        );
        assert!(ns > 0.0);
    }

    #[test]
    fn scale_cfg_seeds_differ_per_rep() {
        let s = Scale::quick();
        assert_ne!(s.cfg(0).seed, s.cfg(1).seed);
    }

    #[test]
    fn scale_cfg_follows_the_shared_seed_schedule() {
        let s = Scale::quick();
        assert_eq!(s.cfg(3).seed, s.cfg(0).rep(3).seed);
        assert_eq!(s.cfg(0).seed, 0x5EED);
    }

    #[test]
    fn registry_stour_curve_matches_equivalent_fway_config() {
        // Regression for the seed-protocol bug: the registry STOUR curve
        // and the custom FwayConfig::stour() curve measure the same
        // barrier and must now be seed-matched point for point — the
        // paper's STOUR-vs-optimized comparison depends on it.
        let scale = Scale::quick();
        let t = topo(Platform::Kunpeng920);
        let registry = algo_curve(&t, AlgorithmId::Stour, &scale);
        let custom = fway_curve(&t, FwayConfig::stour(), &scale);
        assert_eq!(registry, custom);
    }

    #[test]
    fn curves_are_identical_at_any_worker_count() {
        let scale = Scale::quick();
        let t = topo(Platform::ThunderX2);
        let serial = algo_curve_on(&SweepPool::new(1), &t, AlgorithmId::Mcs, &scale);
        let parallel = algo_curve_on(&SweepPool::new(4), &t, AlgorithmId::Mcs, &scale);
        assert_eq!(serial, parallel);
    }
}

//! Sweep runners shared by all experiments.

use std::sync::Arc;

use armbar_core::prelude::*;
use armbar_epcc::{repeat_sim, sim_overhead_of, OverheadConfig};
use armbar_simcoh::Arena;
use armbar_topology::{Platform, Topology};

/// Experiment scale: full (paper-faithful) for the binaries, reduced for
/// integration tests.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Independently seeded repetitions per point (paper: 20).
    pub reps: u64,
    /// Measured barrier episodes per run.
    pub episodes: u32,
    /// Thread counts swept by the "vs. threads" figures.
    pub sweep: Vec<usize>,
}

impl Scale {
    /// Paper-faithful scale (bounded to keep a full regeneration in
    /// minutes: 10 reps instead of the paper's 20; the simulator's noise
    /// comes only from seeded jitter, so fewer reps suffice).
    pub fn full() -> Self {
        Self {
            reps: 10,
            episodes: 40,
            sweep: vec![1, 2, 3, 4, 5, 6, 8, 9, 12, 16, 17, 20, 24, 32, 33, 40, 48, 56, 64],
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        Self { reps: 2, episodes: 10, sweep: vec![1, 4, 16, 64] }
    }

    /// The measurement configuration for rep `r`.
    pub fn cfg(&self, rep: u64) -> OverheadConfig {
        OverheadConfig {
            warmup: 4,
            episodes: self.episodes,
            delay_ns: 100.0,
            seed: 0x5EED_u64.wrapping_add(rep.wrapping_mul(0x9E37_79B9)),
        }
    }
}

/// Shared topology handles (constructing one per call is cheap, but the
/// sweeps reuse them for clarity).
pub fn topo(platform: Platform) -> Arc<Topology> {
    Arc::new(Topology::preset(platform))
}

/// Mean overhead (ns) of a registry algorithm at `p` threads over
/// `scale.reps` repetitions.
pub fn algo_overhead_ns(topo: &Arc<Topology>, p: usize, id: AlgorithmId, scale: &Scale) -> f64 {
    repeat_sim(topo, p, id, scale.cfg(0), scale.reps)
        .unwrap_or_else(|e| panic!("{id} at p={p} on {}: {e}", topo.name()))
        .mean
}

/// Mean overhead (ns) of a custom f-way configuration at `p` threads.
pub fn fway_overhead_ns(topo: &Arc<Topology>, p: usize, config: FwayConfig, scale: &Scale) -> f64 {
    let mut samples = Vec::with_capacity(scale.reps as usize);
    for r in 0..scale.reps {
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> =
            Arc::new(FwayBarrier::with_config(&mut arena, p, topo, config));
        let v = sim_overhead_of(topo, p, barrier, scale.cfg(r))
            .unwrap_or_else(|e| panic!("fway {config:?} at p={p}: {e}"));
        samples.push(v);
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// An overhead-vs-threads curve for a registry algorithm.
pub fn algo_curve(topo: &Arc<Topology>, id: AlgorithmId, scale: &Scale) -> Vec<(usize, f64)> {
    scale
        .sweep
        .iter()
        .filter(|&&p| p <= topo.num_cores())
        .map(|&p| (p, algo_overhead_ns(topo, p, id, scale)))
        .collect()
}

/// An overhead-vs-threads curve for a custom f-way configuration.
pub fn fway_curve(topo: &Arc<Topology>, config: FwayConfig, scale: &Scale) -> Vec<(usize, f64)> {
    scale
        .sweep
        .iter()
        .filter(|&&p| p <= topo.num_cores())
        .map(|&p| (p, fway_overhead_ns(topo, p, config, scale)))
        .collect()
}

/// Directory where the binaries drop CSVs (workspace `results/`).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_runs_a_curve() {
        let t = topo(Platform::ThunderX2);
        let curve = algo_curve(&t, AlgorithmId::Tournament, &Scale::quick());
        assert_eq!(curve.len(), 4);
        assert!(curve.iter().all(|&(_, ns)| ns >= 0.0));
        // Larger thread counts cost more for any real barrier.
        assert!(curve.last().unwrap().1 > curve.first().unwrap().1);
    }

    #[test]
    fn sweep_respects_core_count() {
        let t = topo(Platform::XeonGold); // 32 cores
        let curve = algo_curve(&t, AlgorithmId::Sense, &Scale::quick());
        assert!(curve.iter().all(|&(p, _)| p <= 32));
    }

    #[test]
    fn fway_runner_accepts_custom_configs() {
        let t = topo(Platform::Kunpeng920);
        let ns = fway_overhead_ns(
            &t,
            16,
            FwayConfig { fanin: Fanin::Fixed(4), ..FwayConfig::stour() },
            &Scale::quick(),
        );
        assert!(ns > 0.0);
    }

    #[test]
    fn scale_cfg_seeds_differ_per_rep() {
        let s = Scale::quick();
        assert_ne!(s.cfg(0).seed, s.cfg(1).seed);
    }
}

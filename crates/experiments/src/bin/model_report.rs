//! Regenerates the paper artifact; see `armbar_experiments::figs::model_report`.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let scale = Scale::full();
    for (i, report) in figs::model_report::run(&scale).iter().enumerate() {
        report.print();
        report
            .write_csv(results_dir(), &format!("model_report_{}", i))
            .expect("failed to write CSV");
    }
}

//! Regenerates the phase-breakdown analysis; see
//! `armbar_experiments::figs::phase_breakdown`.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let scale = Scale::full();
    for (i, report) in figs::phase_breakdown::run(&scale).iter().enumerate() {
        report.print();
        report
            .write_csv(results_dir(), &format!("phase_breakdown_{i}"))
            .expect("failed to write CSV");
    }
}

//! Regenerates the kilocore (P ∈ {256, 1024}) projection; see
//! `armbar_experiments::figs::kilocore`. Pass `--quick` for the CI scale.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    for (i, report) in figs::kilocore::run(&scale).iter().enumerate() {
        report.print();
        report.write_csv(results_dir(), &format!("kilocore_{i}")).expect("failed to write CSV");
    }
}

//! Regenerates the paper artifact; see `armbar_experiments::figs::table4`.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let scale = Scale::full();
    for (i, report) in figs::table4::run(&scale).iter().enumerate() {
        report.print();
        report.write_csv(results_dir(), &format!("table4_{}", i)).expect("failed to write CSV");
    }
}

//! Runs every experiment in the workspace and writes all CSVs to
//! `results/` — the full paper regeneration in one command.
//!
//! ```text
//! all_experiments [--quick] [--jobs N] [--out DIR]
//! ```
//!
//! `--quick` runs the reduced test scale (CI smoke), `--jobs N` sets the
//! sweep-pool worker count (default: `ARMBAR_JOBS` or all cores; output
//! is byte-identical at any value), `--out DIR` redirects the CSVs.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned());
    let scale = if args.iter().any(|a| a == "--quick") { Scale::quick() } else { Scale::full() };
    if let Some(jobs) = flag_value("--jobs") {
        match jobs.parse::<usize>() {
            Ok(n) if n >= 1 => armbar_sweep::set_global_jobs(n),
            _ => {
                eprintln!("error: bad --jobs value {jobs:?} (need a positive integer)");
                std::process::exit(2);
            }
        }
    }
    let dir = flag_value("--out").map(std::path::PathBuf::from).unwrap_or_else(results_dir);

    let suites: Vec<(&str, Vec<armbar_experiments::Report>)> = vec![
        ("tables_1_2_3", figs::tables_1_2_3::run(&scale)),
        ("fig05", figs::fig05::run(&scale)),
        ("fig06", figs::fig06::run(&scale)),
        ("fig07", figs::fig07::run(&scale)),
        ("fig11", figs::fig11::run(&scale)),
        ("fig12", figs::fig12::run(&scale)),
        ("fig13", figs::fig13::run(&scale)),
        ("table4", figs::table4::run(&scale)),
        ("model_report", figs::model_report::run(&scale)),
        ("ablations", figs::ablations::run(&scale)),
        ("phase_breakdown", figs::phase_breakdown::run(&scale)),
        ("hotspot", figs::hotspot::run(&scale)),
        ("kilocore", figs::kilocore::run(&scale)),
        ("churn", figs::churn::run(&scale)),
        ("crossover", figs::crossover::run(&scale)),
    ];
    for (slug, reports) in suites {
        for (i, report) in reports.iter().enumerate() {
            report.print();
            report.write_csv(&dir, &format!("{slug}_{i}")).expect("failed to write CSV");
        }
    }
    eprintln!("CSV output written to {}", dir.display());
}

//! Runs every experiment in the workspace and writes all CSVs to
//! `results/` — the full paper regeneration in one command.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let scale = Scale::full();
    let dir = results_dir();
    let suites: Vec<(&str, Vec<armbar_experiments::Report>)> = vec![
        ("tables_1_2_3", figs::tables_1_2_3::run(&scale)),
        ("fig05", figs::fig05::run(&scale)),
        ("fig06", figs::fig06::run(&scale)),
        ("fig07", figs::fig07::run(&scale)),
        ("fig11", figs::fig11::run(&scale)),
        ("fig12", figs::fig12::run(&scale)),
        ("fig13", figs::fig13::run(&scale)),
        ("table4", figs::table4::run(&scale)),
        ("model_report", figs::model_report::run(&scale)),
        ("ablations", figs::ablations::run(&scale)),
        ("phase_breakdown", figs::phase_breakdown::run(&scale)),
        ("hotspot", figs::hotspot::run(&scale)),
    ];
    for (slug, reports) in suites {
        for (i, report) in reports.iter().enumerate() {
            report.print();
            report.write_csv(&dir, &format!("{slug}_{i}")).expect("failed to write CSV");
        }
    }
    eprintln!("CSV output written to {}", dir.display());
}

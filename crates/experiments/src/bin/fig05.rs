//! Regenerates the paper artifact; see `armbar_experiments::figs::fig05`.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let scale = Scale::full();
    for (i, report) in figs::fig05::run(&scale).iter().enumerate() {
        report.print();
        report.write_csv(results_dir(), &format!("fig05_{}", i)).expect("failed to write CSV");
    }
}

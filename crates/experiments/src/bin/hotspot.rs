//! Regenerates the hot-spot traffic analysis; see
//! `armbar_experiments::figs::hotspot`.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let scale = Scale::full();
    for (i, report) in figs::hotspot::run(&scale).iter().enumerate() {
        report.print();
        report.write_csv(results_dir(), &format!("hotspot_{i}")).expect("failed to write CSV");
    }
}

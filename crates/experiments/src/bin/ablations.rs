//! Regenerates the ablation studies; see `armbar_experiments::figs::ablations`.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let scale = Scale::full();
    for (i, report) in figs::ablations::run(&scale).iter().enumerate() {
        report.print();
        report.write_csv(results_dir(), &format!("ablations_{i}")).expect("failed to write CSV");
    }
}

//! Regenerates the churn sweep (phaser overhead vs. membership churn
//! rate); see `armbar_experiments::figs::churn`. Pass `--quick` for the
//! CI scale.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    for (i, report) in figs::churn::run(&scale).iter().enumerate() {
        report.print();
        report.write_csv(results_dir(), &format!("churn_{i}")).expect("failed to write CSV");
    }
}

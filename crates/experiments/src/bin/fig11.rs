//! Regenerates the paper artifact; see `armbar_experiments::figs::fig11`.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let scale = Scale::full();
    for (i, report) in figs::fig11::run(&scale).iter().enumerate() {
        report.print();
        report.write_csv(results_dir(), &format!("fig11_{}", i)).expect("failed to write CSV");
    }
}

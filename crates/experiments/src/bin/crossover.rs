//! Lock-counter vs SENSE/STOUR crossover: model prediction against
//! simulation on the three ARM platforms (DESIGN.md §17). Writes
//! `results/crossover_*.csv` (one per platform plus the summary).
//!
//! ```text
//! crossover [--quick]
//! ```
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    for (i, report) in figs::crossover::run(&scale).iter().enumerate() {
        report.print();
        report.write_csv(results_dir(), &format!("crossover_{i}")).expect("failed to write CSV");
    }
}

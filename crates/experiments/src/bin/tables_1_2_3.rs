//! Regenerates the paper artifact; see `armbar_experiments::figs::tables_1_2_3`.
use armbar_experiments::{figs, runner::results_dir, Scale};

fn main() {
    let scale = Scale::full();
    for (i, report) in figs::tables_1_2_3::run(&scale).iter().enumerate() {
        report.print();
        report
            .write_csv(results_dir(), &format!("tables_1_2_3_{}", i))
            .expect("failed to write CSV");
    }
}

//! Tabular experiment output: aligned ASCII rendering plus CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A rectangular result table with a title and free-form commentary
/// (the "paper expects vs. we measured" notes).
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment title, e.g. `"Figure 7 — Phytium 2000+"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Notes printed under the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch in {}", self.title);
        self.rows.push(cells);
    }

    /// Appends a commentary line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ =
            writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().enumerate().map(|(i, c)| format!("{:>w$}", c, w = widths[i])).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Serializes as CSV (header + rows; notes become `# ` comment lines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", escaped.join(","));
        }
        out
    }

    /// Writes the CSV into `dir/<slug>.csv`, creating the directory.
    pub fn write_csv(&self, dir: impl AsRef<Path>, slug: &str) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{slug}.csv")), self.to_csv())
    }
}

/// Formats nanoseconds as microseconds with two decimals (the unit of the
/// paper's figures).
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1000.0)
}

/// Formats a speedup factor with one decimal and an `x`.
pub fn speedup(x: f64) -> String {
    format!("{x:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("T", &["a", "bb"]);
        r.row(vec!["1".into(), "2".into()]);
        r.row(vec!["333".into(), "4".into()]);
        r.note("hello");
        r
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("== T =="));
        assert!(s.contains("  a  bb"), "{s}");
        assert!(s.contains("333   4"), "{s}");
        assert!(s.contains("* hello"));
    }

    #[test]
    fn csv_has_header_rows_and_notes() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# hello");
        assert_eq!(lines[1], "a,bb");
        assert_eq!(lines[2], "1,2");
        assert_eq!(lines[3], "333,4");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut r = Report::new("T", &["x"]);
        r.row(vec!["a,b".into()]);
        r.row(vec!["say \"hi\"".into()]);
        let csv = r.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut r = Report::new("T", &["a", "b"]);
        r.row(vec!["only one".into()]);
    }

    #[test]
    fn unit_formatters() {
        assert_eq!(us(2500.0), "2.50");
        assert_eq!(speedup(12.64), "12.6x");
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("armbar_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        sample().write_csv(&dir, "t").unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(content.contains("a,bb"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

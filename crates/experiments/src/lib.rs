//! # armbar-experiments — the paper's tables and figures, regenerated
//!
//! One module (and one binary) per experiment:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `tables_1_2_3` | Tables I–III: core-to-core latencies |
//! | `fig05` | Fig. 5: GCC vs LLVM overhead, 32 threads, 4 platforms |
//! | `fig06` | Fig. 6: GCC / LLVM overhead vs thread count |
//! | `fig07` | Fig. 7: seven barrier algorithms vs thread count |
//! | `fig11` | Fig. 11: arrival-flag padding and fixed fan-in |
//! | `fig12` | Fig. 12: wake-up policies |
//! | `fig13` | Fig. 13: fan-in sweep at 64 threads |
//! | `table4` | Table IV: speedups of the optimized barrier |
//! | `model_report` | Eqs. 1–4: optimal fan-in, wake-up crossover |
//! | `kilocore` | beyond the paper: all barriers at P ∈ {256, 1024} |
//! | `all_experiments` | everything above, writing `results/*.csv` |
//!
//! Every experiment function takes a [`Scale`] so integration tests can run
//! the same pipelines at reduced cost, and returns a [`report::Report`]
//! that renders as an aligned ASCII table and serializes to CSV.

pub mod figs;
pub mod report;
pub mod runner;

pub use report::Report;
pub use runner::Scale;

//! The exploring schedule policy: seeded perturbation of the engine's
//! interleaving decisions.
//!
//! Three perturbation mechanisms, all drawn from one `SplitMix64` stream so
//! a trial is a pure function of its seed:
//!
//! 1. **tie-break permutation** — when several ready operations share the
//!    minimum virtual time, pick uniformly among them instead of by thread
//!    id (free: does not consume the perturbation budget);
//! 2. **bounded priority preemption** — with probability `preempt_prob`,
//!    run a uniformly chosen ready op regardless of its timestamp;
//! 3. **targeted delay injection** — with probability `delay_prob`, push a
//!    synchronization-relevant op (a flag write, RMW, or spin entry) up to
//!    `max_delay_ns` into the future, widening race windows exactly where
//!    barriers are vulnerable.
//!
//! Mechanisms 2 and 3 consume from a per-trial `budget`; once spent, the
//! policy degrades to the default minimum-time order, which keeps
//! perturbed runs finite and makes the budget the natural shrinking axis:
//! a violation reproducible at budget 0 needed no perturbation at all.
//!
//! A fourth, **orthogonal** mechanism searches the engine's bounded
//! weak-memory mode (DESIGN.md §15): whenever a relaxed operation could
//! legally misbehave — a relaxed store commit deferred into the thread's
//! store buffer, or a relaxed load served from its stale cache — the
//! engine consults [`SchedulePolicy::weak`], and this policy says *weak*
//! with probability `reorder_prob` until the per-trial `reorder_budget`
//! is spent. The decisions draw from their own `SplitMix64` stream
//! (derived from the same trial seed), so enabling or disabling the
//! reordering search never perturbs the interleaving decisions: a
//! `reorder_budget` of 0 reproduces the sequentially consistent engine
//! byte-for-byte, which makes the reordering budget a second independent
//! shrinking axis — shrunk *first*, because a violation reproducible at
//! reorder budget 0 is a scheduling bug, not a memory-ordering bug.

use armbar_simcoh::rng::SplitMix64;
#[cfg(test)]
use armbar_simcoh::schedule::WeakOpKind;
use armbar_simcoh::schedule::{
    oldest_index, ReadyOp, ReadyOpKind, ScheduleDecision, SchedulePolicy, WeakDecision, WeakOp,
};

/// Tuning knobs for [`ExplorerPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplorerConfig {
    /// Probability of a bounded priority preemption per decision point.
    pub preempt_prob: f64,
    /// Probability of a targeted delay injection per decision point.
    pub delay_prob: f64,
    /// Upper bound on one injected delay, in virtual ns.
    pub max_delay_ns: f64,
    /// Perturbation budget per trial: preemptions + delays combined.
    pub budget: u32,
    /// Probability of taking a weak-memory choice (defer a relaxed store
    /// commit / serve a relaxed load stale) when the engine offers one.
    pub reorder_prob: f64,
    /// Weak-memory choices per trial. 0 (the default) disables the
    /// reordering search entirely: the engine stays sequentially
    /// consistent and runs are byte-identical to a build without the
    /// weak-memory mode.
    pub reorder_budget: u32,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        Self {
            preempt_prob: 0.25,
            delay_prob: 0.25,
            max_delay_ns: 500.0,
            budget: 64,
            reorder_prob: 0.5,
            reorder_budget: 0,
        }
    }
}

impl ExplorerConfig {
    /// This configuration with a different perturbation budget (the
    /// shrinking axis).
    pub fn with_budget(mut self, budget: u32) -> Self {
        self.budget = budget;
        self
    }

    /// This configuration with a different weak-memory reordering budget
    /// (the second shrinking axis; 0 disables the reordering search).
    pub fn with_reorder_budget(mut self, reorder_budget: u32) -> Self {
        self.reorder_budget = reorder_budget;
        self
    }
}

/// A seeded [`SchedulePolicy`] implementing the exploration mechanisms
/// above. One instance drives one trial.
#[derive(Debug, Clone)]
pub struct ExplorerPolicy {
    rng: SplitMix64,
    /// Weak-memory decision stream, separate from `rng` so the reordering
    /// search composes with — never perturbs — the interleaving search.
    wrng: SplitMix64,
    cfg: ExplorerConfig,
    remaining: u32,
    reorder_remaining: u32,
}

impl ExplorerPolicy {
    /// A policy for one trial: `seed` fixes the entire decision stream.
    pub fn new(seed: u64, cfg: ExplorerConfig) -> Self {
        // Decorrelate from the engine's jitter stream, which is seeded
        // with the same trial seed.
        Self {
            rng: SplitMix64::new(seed ^ 0xC0F0_8A11_5EED_0001),
            wrng: SplitMix64::new(seed ^ 0xC0F0_8A11_5EED_0002),
            cfg,
            remaining: cfg.budget,
            reorder_remaining: cfg.reorder_budget,
        }
    }

    fn pick_index(&mut self, n: usize) -> usize {
        (self.rng.next_u64() % n as u64) as usize
    }
}

impl SchedulePolicy for ExplorerPolicy {
    fn pick(&mut self, ready: &[ReadyOp], _min_running: Option<(f64, usize)>) -> ScheduleDecision {
        if self.remaining > 0 && ready.len() > 1 {
            let roll = self.rng.next_f64();
            if roll < self.cfg.delay_prob {
                // Delay a synchronization site: flag writes, RMWs, and
                // spin entries are where lost-wakeup and early-exit
                // windows live.
                let sites: Vec<usize> = ready
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| {
                        r.addr.is_some()
                            && matches!(
                                r.kind,
                                ReadyOpKind::Write | ReadyOpKind::Rmw | ReadyOpKind::Spin
                            )
                    })
                    .map(|(i, _)| i)
                    .collect();
                if !sites.is_empty() {
                    self.remaining -= 1;
                    let index = sites[self.pick_index(sites.len())];
                    let ns = self.rng.next_f64() * self.cfg.max_delay_ns;
                    return ScheduleDecision::Delay { index, ns };
                }
            } else if roll < self.cfg.delay_prob + self.cfg.preempt_prob {
                self.remaining -= 1;
                return ScheduleDecision::Run(self.pick_index(ready.len()));
            }
            // Free tie-break permutation: uniform among the ops sharing
            // the minimum virtual time.
            let i0 = oldest_index(ready);
            let t0 = ready[i0].time_ns;
            let ties: Vec<usize> =
                ready.iter().enumerate().filter(|(_, r)| r.time_ns == t0).map(|(i, _)| i).collect();
            if ties.len() > 1 {
                return ScheduleDecision::Run(ties[self.pick_index(ties.len())]);
            }
            return ScheduleDecision::Run(i0);
        }
        // Budget spent (or nothing to permute): default order.
        ScheduleDecision::Run(oldest_index(ready))
    }

    fn weak(&mut self, _op: &WeakOp) -> WeakDecision {
        if self.reorder_remaining == 0 {
            // Early return WITHOUT consuming the stream: a reorder budget
            // of 0 must be byte-identical to a policy with no weak()
            // override at all, and an exhausted budget must degrade to
            // sequential consistency the same way the perturbation
            // budget degrades to minimum-time order.
            return WeakDecision::Strong;
        }
        if self.wrng.next_f64() < self.cfg.reorder_prob {
            self.reorder_remaining -= 1;
            WeakDecision::Weak
        } else {
            WeakDecision::Strong
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(tid: usize, t: f64, kind: ReadyOpKind) -> ReadyOp {
        ReadyOp { tid, time_ns: t, kind, addr: Some(64 * tid as u32) }
    }

    #[test]
    fn zero_budget_reproduces_default_order() {
        let mut p = ExplorerPolicy::new(7, ExplorerConfig::default().with_budget(0));
        let ready = [
            op(2, 5.0, ReadyOpKind::Write),
            op(0, 5.0, ReadyOpKind::Rmw),
            op(1, 1.0, ReadyOpKind::Read),
        ];
        for _ in 0..32 {
            assert_eq!(p.pick(&ready, None), ScheduleDecision::Run(2), "index of min (time, tid)");
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let ready = [
            op(0, 1.0, ReadyOpKind::Write),
            op(1, 1.0, ReadyOpKind::Spin),
            op(2, 1.0, ReadyOpKind::Rmw),
            op(3, 2.0, ReadyOpKind::Read),
        ];
        let cfg = ExplorerConfig::default();
        let mut a = ExplorerPolicy::new(99, cfg);
        let mut b = ExplorerPolicy::new(99, cfg);
        for _ in 0..256 {
            assert_eq!(a.pick(&ready, None), b.pick(&ready, None));
        }
    }

    #[test]
    fn budget_bounds_the_perturbations() {
        let ready = [
            op(0, 1.0, ReadyOpKind::Write),
            op(1, 1.0, ReadyOpKind::Write),
            op(2, 3.0, ReadyOpKind::Write),
        ];
        let mut p = ExplorerPolicy::new(3, ExplorerConfig { budget: 5, ..Default::default() });
        let mut perturbed = 0u32;
        for _ in 0..1000 {
            // A preemption picking a non-minimal op is only provably a
            // perturbation when it selects index 2 (time 3.0); the
            // budget accounting below is checked directly instead.
            if let ScheduleDecision::Delay { .. } = p.pick(&ready, None) {
                perturbed += 1;
            }
        }
        assert!(perturbed <= 5, "delays alone exceeded the budget: {perturbed}");
        assert_eq!(p.remaining, 0, "a long run must spend the whole budget");
    }

    #[test]
    fn delays_target_sync_sites_only() {
        // Only Free ops (no addr): delay must never fire, preemption may.
        let ready = [
            ReadyOp { tid: 0, time_ns: 1.0, kind: ReadyOpKind::Free, addr: None },
            ReadyOp { tid: 1, time_ns: 1.0, kind: ReadyOpKind::Free, addr: None },
        ];
        let mut p = ExplorerPolicy::new(
            11,
            ExplorerConfig { delay_prob: 1.0, preempt_prob: 0.0, ..Default::default() },
        );
        for _ in 0..100 {
            assert!(!matches!(p.pick(&ready, None), ScheduleDecision::Delay { .. }));
        }
    }

    fn wop(tid: usize) -> WeakOp {
        WeakOp { tid, addr: 64 * tid as u32, kind: WeakOpKind::RelaxedStore }
    }

    #[test]
    fn zero_reorder_budget_is_always_strong() {
        let mut p =
            ExplorerPolicy::new(7, ExplorerConfig { reorder_prob: 1.0, ..Default::default() });
        assert_eq!(p.cfg.reorder_budget, 0, "reordering is off by default");
        for i in 0..256 {
            assert_eq!(p.weak(&wop(i % 8)), WeakDecision::Strong);
        }
    }

    #[test]
    fn reorder_budget_bounds_weak_decisions() {
        let mut p = ExplorerPolicy::new(
            21,
            ExplorerConfig { reorder_prob: 1.0, ..Default::default() }.with_reorder_budget(5),
        );
        let weaks = (0..1000).filter(|i| p.weak(&wop(i % 8)) == WeakDecision::Weak).count();
        assert_eq!(weaks, 5, "prob 1.0 must spend exactly the reorder budget");
        assert_eq!(p.reorder_remaining, 0);
    }

    #[test]
    fn weak_stream_is_independent_of_pick_stream() {
        // Interleaving weak() calls must not change the pick() decisions:
        // the two streams are decorrelated by construction.
        let ready = [
            op(0, 1.0, ReadyOpKind::Write),
            op(1, 1.0, ReadyOpKind::Spin),
            op(2, 1.0, ReadyOpKind::Rmw),
        ];
        let cfg = ExplorerConfig::default().with_reorder_budget(64);
        let mut plain = ExplorerPolicy::new(99, cfg);
        let mut mixed = ExplorerPolicy::new(99, cfg);
        for i in 0..256 {
            mixed.weak(&wop(i % 8));
            assert_eq!(plain.pick(&ready, None), mixed.pick(&ready, None));
        }
    }

    #[test]
    fn same_seed_same_weak_decisions() {
        let cfg = ExplorerConfig::default().with_reorder_budget(16);
        let mut a = ExplorerPolicy::new(4242, cfg);
        let mut b = ExplorerPolicy::new(4242, cfg);
        for i in 0..256 {
            assert_eq!(a.weak(&wop(i % 8)), b.weak(&wop(i % 8)));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let ready = [
            op(0, 1.0, ReadyOpKind::Write),
            op(1, 1.0, ReadyOpKind::Write),
            op(2, 1.0, ReadyOpKind::Write),
            op(3, 1.0, ReadyOpKind::Write),
        ];
        let cfg = ExplorerConfig::default();
        let seq = |seed: u64| {
            let mut p = ExplorerPolicy::new(seed, cfg);
            (0..64).map(|_| format!("{:?}", p.pick(&ready, None))).collect::<Vec<_>>()
        };
        assert_ne!(seq(1), seq(2));
    }
}

//! Fence minimization: which of a barrier's orderings are load-bearing?
//!
//! Every algorithm in `armbar-core` ships with hand-placed acquire/release
//! annotations (relaxed where a comment argues it is safe, ordered where
//! the ordering is load-bearing). This module *tests that placement* under
//! the bounded weak-memory search: for each (platform, algorithm) cell it
//! re-runs the conformance trials at four demotion levels —
//!
//! * **as-shipped** — the annotations exactly as written;
//! * **relax-loads** — every acquire load inside `Barrier::wait` demoted
//!   to relaxed (spins, RMWs, and fences keep their semantics);
//! * **relax-stores** — every release store inside `wait` demoted;
//! * **relax-all** — both demotions at once;
//!
//! and records which levels survive the weak explorer. The demotion is a
//! [`MemCtx`] wrapper applied around the barrier's `wait` **only**: the
//! episode oracle's own witness accesses run unwrapped, so a level
//! "passes" exactly when the barrier still publishes pre-barrier writes
//! and orders post-barrier reads with the orderings that *remain*.
//!
//! The search is greedy weakest-first per cell: the first level in
//! `[relax-all, relax-stores, relax-loads, as-shipped]` whose every seeded
//! trial passes is the **weakest passing placement** — if it is not
//! `as-shipped`, the shipped annotations are stronger than the oracles
//! require (a documented optimization opportunity, not a bug). A level
//! that fails ships a shrunk deterministic reproducer, which doubles as
//! the suite's injected-bug self-test: demoting SENSE's release flip
//! reorders the counter reset behind it and loses arrivals.

use std::sync::Arc;

use armbar_core::{AlgorithmId, Barrier, MemCtx};
use armbar_simcoh::Addr;
use armbar_sweep::{Job, SweepPool};
use armbar_topology::{Platform, Topology};

use crate::checker::{run_trial_with, shrink_candidates, Violation};
use crate::explorer::ExplorerConfig;

/// How far to demote the annotations inside `Barrier::wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FenceLevel {
    /// Both demotions at once (the weakest placement probed).
    RelaxAll,
    /// Every release store demoted to relaxed.
    RelaxStores,
    /// Every acquire load demoted to relaxed.
    RelaxLoads,
    /// The annotations exactly as written in the algorithm.
    AsShipped,
}

impl FenceLevel {
    /// Weakest-first probe order.
    pub const ALL: [FenceLevel; 4] = [
        FenceLevel::RelaxAll,
        FenceLevel::RelaxStores,
        FenceLevel::RelaxLoads,
        FenceLevel::AsShipped,
    ];

    /// Stable table label.
    pub fn label(self) -> &'static str {
        match self {
            FenceLevel::RelaxAll => "relax-all",
            FenceLevel::RelaxStores => "relax-stores",
            FenceLevel::RelaxLoads => "relax-loads",
            FenceLevel::AsShipped => "as-shipped",
        }
    }

    fn relax_loads(self) -> bool {
        matches!(self, FenceLevel::RelaxAll | FenceLevel::RelaxLoads)
    }

    fn relax_stores(self) -> bool {
        matches!(self, FenceLevel::RelaxAll | FenceLevel::RelaxStores)
    }
}

impl std::fmt::Display for FenceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// [`MemCtx`] wrapper demoting ordered plain accesses per [`FenceLevel`].
/// Spins, RMWs, and fences pass through untouched: demotion targets the
/// annotations the algorithms chose, not the primitives' semantics.
struct WeakenCtx<'a> {
    inner: &'a dyn MemCtx,
    level: FenceLevel,
}

impl MemCtx for WeakenCtx<'_> {
    fn tid(&self) -> usize {
        self.inner.tid()
    }
    fn nthreads(&self) -> usize {
        self.inner.nthreads()
    }
    fn load(&self, addr: Addr) -> u32 {
        if self.level.relax_loads() {
            self.inner.load_relaxed(addr)
        } else {
            self.inner.load(addr)
        }
    }
    fn store(&self, addr: Addr, value: u32) {
        if self.level.relax_stores() {
            self.inner.store_relaxed(addr, value)
        } else {
            self.inner.store(addr, value)
        }
    }
    fn load_relaxed(&self, addr: Addr) -> u32 {
        self.inner.load_relaxed(addr)
    }
    fn store_relaxed(&self, addr: Addr, value: u32) {
        self.inner.store_relaxed(addr, value)
    }
    fn fence(&self) {
        self.inner.fence()
    }
    fn fetch_add(&self, addr: Addr, delta: u32) -> u32 {
        self.inner.fetch_add(addr, delta)
    }
    fn compare_exchange(&self, addr: Addr, current: u32, new: u32) -> u32 {
        self.inner.compare_exchange(addr, current, new)
    }
    fn swap(&self, addr: Addr, new: u32) -> u32 {
        // RMWs keep their AcqRel semantics under every weakening — LSE
        // atomics are not relaxed by the fence-variant search.
        self.inner.swap(addr, new)
    }
    fn spin_until_eq(&self, addr: Addr, value: u32) -> u32 {
        self.inner.spin_until_eq(addr, value)
    }
    fn spin_until_ge(&self, addr: Addr, value: u32) -> u32 {
        self.inner.spin_until_ge(addr, value)
    }
    fn spin_until_all_ge(&self, addrs: &[Addr], value: u32) {
        self.inner.spin_until_all_ge(addrs, value)
    }
    fn compute_ns(&self, ns: f64) {
        self.inner.compute_ns(ns)
    }
    fn mark(&self, label: u32) {
        self.inner.mark(label)
    }
}

/// Wraps a barrier so its `wait` body runs under a [`WeakenCtx`]. The
/// oracle and the trace marks (`wait_traced`/`wait_conformed` default
/// methods) still see the raw context.
struct WeakenedBarrier {
    inner: Box<dyn Barrier>,
    level: FenceLevel,
}

impl Barrier for WeakenedBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        self.inner.wait(&WeakenCtx { inner: ctx, level: self.level });
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// What to probe: the cross product of platforms × algorithms × the four
/// demotion levels, each searched over `seeds` weak-exploring schedules.
#[derive(Debug, Clone)]
pub struct FenceConfig {
    /// Modeled machines to probe on.
    pub platforms: Vec<Platform>,
    /// Barrier algorithms under audit.
    pub algorithms: Vec<AlgorithmId>,
    /// Participating threads per trial (clamped to the platform's cores).
    pub threads: usize,
    /// Audited barrier episodes per trial (≥ 2, or cross-episode
    /// reorderings — the interesting ones — are invisible).
    pub episodes: u32,
    /// Seeded schedules searched per (platform, algorithm, level).
    pub seeds: u32,
    /// Master seed; trial seeds derive from it.
    pub base_seed: u64,
    /// Exploration tuning. `reorder_budget` must be > 0: a fence probe
    /// without the weak search would pass every demotion vacuously.
    pub explorer: ExplorerConfig,
    /// Engine op budget per trial.
    pub op_budget: u64,
}

impl Default for FenceConfig {
    fn default() -> Self {
        Self {
            platforms: vec![Platform::Kunpeng920],
            algorithms: AlgorithmId::ALL.to_vec(),
            threads: 8,
            episodes: 3,
            seeds: 80,
            base_seed: 0x00FE_2CE5,
            explorer: ExplorerConfig { reorder_prob: 0.8, ..ExplorerConfig::default() }
                .with_reorder_budget(16),
            op_budget: 4_000_000,
        }
    }
}

/// Outcome of probing one demotion level of one cell.
#[derive(Debug, Clone)]
pub struct LevelResult {
    /// The demotion probed.
    pub level: FenceLevel,
    /// Shrunk reproducer if any seeded trial violated; `None` = the level
    /// passed every trial.
    pub violation: Option<Violation>,
}

/// One (platform, algorithm) row of the fence report.
#[derive(Debug, Clone)]
pub struct FenceCell {
    /// Modeled machine.
    pub platform: Platform,
    /// Algorithm under audit.
    pub algorithm: AlgorithmId,
    /// Threads per trial (after clamping to the platform).
    pub threads: usize,
    /// One result per [`FenceLevel::ALL`] entry, in that (weakest-first)
    /// order.
    pub results: Vec<LevelResult>,
}

impl FenceCell {
    /// The weakest demotion level that passed every trial. `as-shipped`
    /// always passes on a conforming barrier, so this is total for
    /// correct inputs; `None` means even the shipped placement violated.
    pub fn weakest_passing(&self) -> Option<FenceLevel> {
        self.results.iter().find(|r| r.violation.is_none()).map(|r| r.level)
    }

    /// Whether the shipped placement is minimal: no strictly weaker
    /// probed level also passes.
    pub fn shipped_is_minimal(&self) -> bool {
        self.weakest_passing() == Some(FenceLevel::AsShipped)
    }
}

/// Probes one demotion level of one cell: runs up to `cfg.seeds` trials
/// and shrinks the first violation (reordering budget first).
fn probe_level(
    topo: &Arc<Topology>,
    algorithm: AlgorithmId,
    level: FenceLevel,
    cfg: &FenceConfig,
) -> LevelResult {
    let build = |arena: &mut armbar_simcoh::Arena, p: usize, t: &Topology| -> Box<dyn Barrier> {
        Box::new(WeakenedBarrier { inner: algorithm.build(arena, p, t), level })
    };
    let run = |budget: u32, reorder_budget: u32, episodes: u32, seed: u64| {
        run_trial_with(
            topo,
            &build,
            cfg.threads,
            episodes,
            seed,
            cfg.explorer.with_budget(budget).with_reorder_budget(reorder_budget),
            cfg.op_budget,
        )
    };
    for i in 0..cfg.seeds {
        let seed = crate::checker::trial_seed(cfg.base_seed, i);
        let Err(found) = run(cfg.explorer.budget, cfg.explorer.reorder_budget, cfg.episodes, seed)
        else {
            continue;
        };
        // Shrink: reordering budget first, then perturbation budget, then
        // episodes — the same ladder as the conformance checker's.
        let mut budget = cfg.explorer.budget;
        let mut reorder_budget = cfg.explorer.reorder_budget;
        let mut episodes = cfg.episodes;
        let (mut kind, mut detail) = found;
        for &cand in &shrink_candidates(cfg.explorer.reorder_budget) {
            if let Err((k, d)) = run(budget, cand, episodes, seed) {
                reorder_budget = cand;
                kind = k;
                detail = d;
                break;
            }
        }
        for &cand in &shrink_candidates(cfg.explorer.budget) {
            if let Err((k, d)) = run(cand, reorder_budget, episodes, seed) {
                budget = cand;
                kind = k;
                detail = d;
                break;
            }
        }
        for e in 1..cfg.episodes {
            if let Err((k, d)) = run(budget, reorder_budget, e, seed) {
                episodes = e;
                kind = k;
                detail = d;
                break;
            }
        }
        return LevelResult {
            level,
            violation: Some(Violation { kind, detail, seed, budget, reorder_budget, episodes }),
        };
    }
    LevelResult { level, violation: None }
}

/// Probes one (platform, algorithm) row, weakest level first.
fn run_fence_cell(platform: Platform, algorithm: AlgorithmId, cfg: &FenceConfig) -> FenceCell {
    let topo = Arc::new(Topology::preset(platform));
    let threads = cfg.threads.min(topo.num_cores()).max(1);
    let results =
        FenceLevel::ALL.iter().map(|&level| probe_level(&topo, algorithm, level, cfg)).collect();
    FenceCell { platform, algorithm, threads, results }
}

/// Runs the fence-minimization matrix on the ambient [`SweepPool`].
pub fn fence_matrix(cfg: &FenceConfig) -> Vec<FenceCell> {
    fence_matrix_on(&SweepPool::ambient(), cfg)
}

/// [`fence_matrix`] on an explicit pool. Cells are pure functions of the
/// config, fan out as parallel jobs, and collect in submission order —
/// the rendered report is byte-identical at any worker count.
pub fn fence_matrix_on(pool: &SweepPool, cfg: &FenceConfig) -> Vec<FenceCell> {
    assert!(cfg.explorer.reorder_budget > 0, "a fence probe needs the weak search on");
    assert!(cfg.episodes >= 2, "cross-episode reorderings need at least two episodes");
    crate::checker::silence_oracle_panics();
    let mut jobs: Vec<Job<'_, FenceCell>> = Vec::new();
    for &platform in &cfg.platforms {
        for &algorithm in &cfg.algorithms {
            jobs.push(Job::parallel(move || run_fence_cell(platform, algorithm, cfg)));
        }
    }
    pool.run(jobs)
}

/// Renders the fence report as Markdown: one row per (platform,
/// algorithm), a pass/fail column per demotion level, and the weakest
/// passing placement. Deterministic — no wall-clock values.
pub fn render_fence_markdown(cells: &[FenceCell], cfg: &FenceConfig) -> String {
    let mut out = String::new();
    out.push_str("# Fence minimization report\n\n");
    out.push_str(&format!(
        "Weak-memory search: base seed {:#x}, {} seeds/level, {} episodes, {} threads, \
         budget {}, reorder budget {} (p={}).\n\n",
        cfg.base_seed,
        cfg.seeds,
        cfg.episodes,
        cfg.threads,
        cfg.explorer.budget,
        cfg.explorer.reorder_budget,
        cfg.explorer.reorder_prob,
    ));
    out.push_str(
        "`ok` = every seeded trial passed at that demotion; a kind label = the shrunk \
         counterexample's violation class. `as-shipped` is the placement committed in \
         `armbar-core`; a weaker passing level means the shipped placement is stronger than \
         the episode oracles require.\n\n",
    );
    out.push_str("| platform | algorithm | relax-all | relax-stores | relax-loads | as-shipped | weakest passing |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for c in cells {
        let col = |level: FenceLevel| -> String {
            match c.results.iter().find(|r| r.level == level).and_then(|r| r.violation.as_ref()) {
                None => "ok".to_string(),
                Some(v) => format!("{}", v.kind),
            }
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            c.platform.label(),
            c.algorithm.label(),
            col(FenceLevel::RelaxAll),
            col(FenceLevel::RelaxStores),
            col(FenceLevel::RelaxLoads),
            col(FenceLevel::AsShipped),
            c.weakest_passing().map(|l| l.label()).unwrap_or("NONE (shipped VIOLATED)"),
        ));
    }
    out.push('\n');
    let mut any = false;
    for c in cells {
        for r in &c.results {
            if let Some(v) = &r.violation {
                if !any {
                    out.push_str("## Shrunk counterexamples\n\n");
                    any = true;
                }
                out.push_str(&format!(
                    "- {} / {} @ {}: {}: {} [replay: seed {:#x} budget {} rbudget {} episodes {}]\n",
                    c.platform.label(),
                    c.algorithm.label(),
                    r.level,
                    v.kind,
                    v.detail,
                    v.seed,
                    v.budget,
                    v.reorder_budget,
                    v.episodes,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_sweep::SweepPool;

    fn quick_cfg(algorithms: Vec<AlgorithmId>) -> FenceConfig {
        FenceConfig { algorithms, threads: 4, episodes: 3, seeds: 40, ..FenceConfig::default() }
    }

    #[test]
    fn shipped_sense_passes_and_underfenced_sense_is_caught() {
        // The suite's injected-bug self-test: SENSE's counter reset may be
        // (and is) relaxed because the champion's global-sense flip is a
        // release that flushes it. Demoting that release (relax-stores)
        // re-creates the classic under-fenced barrier: the reset commits
        // after the flip, a woken peer's next-episode arrival is erased,
        // and the episode deadlocks. The probe must catch it AND the
        // as-shipped placement must survive the same search.
        let cells = fence_matrix_on(&SweepPool::new(2), &quick_cfg(vec![AlgorithmId::Sense]));
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        let at = |level: FenceLevel| {
            cell.results.iter().find(|r| r.level == level).expect("all levels probed")
        };
        assert!(
            at(FenceLevel::AsShipped).violation.is_none(),
            "shipped SENSE must conform under the weak search: {:?}",
            at(FenceLevel::AsShipped).violation
        );
        let broken = at(FenceLevel::RelaxStores)
            .violation
            .as_ref()
            .expect("demoting SENSE's release flip must be caught");
        assert!(
            broken.reorder_budget > 0,
            "the reproducer needs weak memory: a shrink to rbudget 0 would mean a scheduling \
             bug, got {broken:?}"
        );
        assert!(broken.episodes >= 2, "the lost arrival is a cross-episode effect: {broken:?}");
        // The shrunk reproducer replays deterministically.
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let cfg = quick_cfg(vec![AlgorithmId::Sense]);
        let build =
            |arena: &mut armbar_simcoh::Arena, p: usize, t: &Topology| -> Box<dyn Barrier> {
                Box::new(WeakenedBarrier {
                    inner: AlgorithmId::Sense.build(arena, p, t),
                    level: FenceLevel::RelaxStores,
                })
            };
        let replay = run_trial_with(
            &topo,
            &build,
            cfg.threads,
            broken.episodes,
            broken.seed,
            cfg.explorer.with_budget(broken.budget).with_reorder_budget(broken.reorder_budget),
            cfg.op_budget,
        );
        assert_eq!(replay.err().map(|(k, _)| k), Some(broken.kind));
    }

    #[test]
    fn report_renders_every_cell_and_flags_counterexamples() {
        let cfg = quick_cfg(vec![AlgorithmId::Sense]);
        let cells = fence_matrix_on(&SweepPool::new(2), &cfg);
        let md = render_fence_markdown(&cells, &cfg);
        assert!(md.contains("| Kunpeng920 | SENSE |"));
        assert!(md.contains("## Shrunk counterexamples"), "relax-stores must contribute one");
        assert!(md.contains("rbudget"));
    }

    #[test]
    fn weak_search_is_required() {
        let cfg = FenceConfig {
            explorer: ExplorerConfig::default().with_reorder_budget(0),
            ..quick_cfg(vec![AlgorithmId::Sense])
        };
        let caught = std::panic::catch_unwind(|| fence_matrix_on(&SweepPool::new(1), &cfg));
        assert!(caught.is_err(), "reorder budget 0 must be rejected");
    }
}

//! Rendering of conformance results: CSV (with a `#`-prefixed provenance
//! header) and JSON. No wall-clock values appear anywhere, so equal
//! configurations yield byte-identical output at any worker count.

use crate::checker::{ConformCell, ConformConfig};

/// Renders cells as CSV. The provenance header records everything needed
//  to replay the table.
pub fn render_csv(cells: &[ConformCell], cfg: &ConformConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# conform: base seed {:#x}, seeds/cell {}, episodes {}, threads {}, \
         budget {}, rbudget {} (p={}), preempt {}, delay {} (max {} ns)\n",
        cfg.base_seed,
        cfg.seeds,
        cfg.episodes,
        cfg.threads,
        cfg.explorer.budget,
        cfg.explorer.reorder_budget,
        cfg.explorer.reorder_prob,
        cfg.explorer.preempt_prob,
        cfg.explorer.delay_prob,
        cfg.explorer.max_delay_ns,
    ));
    out.push_str("platform,threads,algorithm,trials,distinct_schedules,violations,status,detail\n");
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            c.platform.label(),
            c.threads,
            c.algorithm.label(),
            c.trials,
            c.distinct_schedules,
            c.violations.len(),
            c.status(),
            c.detail().replace(',', ";")
        ));
    }
    out
}

/// Renders cells as a JSON document (same fields as the CSV, plus the full
/// shrunk reproducer per violation).
pub fn render_json(cells: &[ConformCell], cfg: &ConformConfig) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"base_seed\": {},\n", cfg.base_seed));
    out.push_str(&format!("  \"seeds_per_cell\": {},\n", cfg.seeds));
    out.push_str(&format!("  \"episodes\": {},\n", cfg.episodes));
    out.push_str(&format!("  \"threads\": {},\n", cfg.threads));
    out.push_str(&format!("  \"budget\": {},\n", cfg.explorer.budget));
    out.push_str(&format!("  \"reorder_budget\": {},\n", cfg.explorer.reorder_budget));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"platform\": \"{}\", \"threads\": {}, \"algorithm\": \"{}\", \
             \"trials\": {}, \"distinct_schedules\": {}, \"status\": \"{}\", \
             \"violations\": [",
            c.platform.label(),
            c.threads,
            c.algorithm.label(),
            c.trials,
            c.distinct_schedules,
            c.status(),
        ));
        for (j, v) in c.violations.iter().enumerate() {
            out.push_str(&format!(
                "{{\"kind\": \"{}\", \"seed\": {}, \"budget\": {}, \"reorder_budget\": {}, \
                 \"episodes\": {}, \"detail\": \"{}\"}}{}",
                v.kind,
                v.seed,
                v.budget,
                v.reorder_budget,
                v.episodes,
                v.detail.replace('"', "'"),
                if j + 1 < c.violations.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!("]}}{}\n", if i + 1 < cells.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{Violation, ViolationKind};
    use armbar_core::AlgorithmId;
    use armbar_topology::Platform;

    fn cell(violations: Vec<Violation>) -> ConformCell {
        ConformCell {
            platform: Platform::Kunpeng920,
            algorithm: AlgorithmId::Sense,
            threads: 8,
            trials: 10,
            distinct_schedules: 9,
            violations,
        }
    }

    #[test]
    fn csv_has_provenance_and_rows() {
        let cfg = ConformConfig::default();
        let csv = render_csv(&[cell(vec![])], &cfg);
        assert!(csv.starts_with("# conform: base seed 0xc0f0"));
        assert!(csv.contains("platform,threads,algorithm"));
        assert!(csv.contains("Kunpeng920,8,SENSE,10,9,0,ok,9 distinct schedules"));
    }

    #[test]
    fn violations_render_with_reproducer() {
        let cfg = ConformConfig::default();
        let v = Violation {
            kind: ViolationKind::EarlyExit,
            detail: "t1 left early".to_string(),
            seed: 0xBEEF,
            budget: 2,
            reorder_budget: 4,
            episodes: 1,
        };
        let csv = render_csv(&[cell(vec![v.clone()])], &cfg);
        assert!(csv.contains("VIOLATED"));
        assert!(csv.contains("seed 0xbeef budget 2 rbudget 4 episodes 1"));
        let json = render_json(&[cell(vec![v])], &cfg);
        assert!(json.contains("\"kind\": \"early-exit\""));
        assert!(json.contains("\"seed\": 48879"));
        assert!(json.contains("\"reorder_budget\": 4"));
    }
}

//! Phaser conformance: schedule search over register/deregister
//! interleavings with membership safety oracles.
//!
//! Where [`crate::checker`] audits *fixed-membership* barriers, this module
//! audits the dynamic-membership [`Phaser`]s: each trial runs a seeded
//! [`ChurnPlan`] script (a late join, an orderly leave, a crash eviction,
//! or a leave/rejoin flap) under the same perturbing
//! [`ExplorerPolicy`](crate::ExplorerPolicy) the fixed checker uses, then
//! reconstructs the per-epoch member set from the phaser event marks and
//! checks two oracles:
//!
//! * **no lost member** — every committed member's `PH_COMPLETED` epochs
//!   form a gapless, repeat-free run covering exactly its membership
//!   interval (`PH_JOINED`‥`PH_LEFT`/`PH_EVICTED`, or the whole run), and
//!   only a scripted deserter is ever evicted;
//! * **no phantom arrival** — no completion, leave, or eviction is ever
//!   recorded for a slot outside the committed membership.
//!
//! Trials are pure functions of their seed (the script, the schedule, and
//! the stall-detection budget all derive from it), so every violation
//! ships with a deterministic reproducer, shrunk exactly like the fixed
//! checker's: smallest perturbation budget first, then fewest episodes.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use armbar_core::phaser::{
    decode_phaser_mark, Phaser, PH_COMPLETED, PH_EVICTED, PH_JOINED, PH_LEFT, PH_MARK_EPOCH_MAX,
};
use armbar_core::{AlgorithmId, BarrierError, RobustConfig, RobustPhaser};
use armbar_faults::harness::CHURN_SIM_MAX_POLLS;
use armbar_faults::{build_phaser, churn_thread, ChurnPlan, ChurnVerdict, Scenario};
use armbar_simcoh::stats::Mark;
use armbar_simcoh::{Arena, SimBuilder, SimError};
use armbar_sweep::{Job, SweepPool};
use armbar_topology::{Platform, Topology};

use crate::checker::{trial_seed, Violation, ViolationKind};
use crate::explorer::{ExplorerConfig, ExplorerPolicy};

/// What to check: platforms × phaser algorithms × churn scenarios, each
/// cell searched over `seeds` perturbed schedules.
#[derive(Debug, Clone)]
pub struct PhaserConformConfig {
    /// Modeled machines to check on.
    pub platforms: Vec<Platform>,
    /// Phaser algorithms under audit (fixed-membership algorithms cannot
    /// run churn scripts and are rejected per-trial).
    pub algorithms: Vec<AlgorithmId>,
    /// Churn scripts to search under (the register/deregister
    /// interleavings; see [`Scenario::CHURN`]).
    pub scenarios: Vec<Scenario>,
    /// Participating slots per trial (clamped to the platform's cores).
    pub threads: usize,
    /// Steady-state episodes per trial (the script's epochs fall inside).
    pub episodes: u32,
    /// Seeded schedules searched per (platform, algorithm, scenario) cell.
    pub seeds: u32,
    /// Master seed; trial seeds derive from it.
    pub base_seed: u64,
    /// Exploration tuning (perturbation probabilities and budget).
    pub explorer: ExplorerConfig,
    /// Engine op budget per trial (perturbation delays count against it).
    pub op_budget: u64,
    /// Stall-detection budget in failed polls (see
    /// [`RobustConfig::max_polls`]). Must stay far above any healthy wait
    /// *including* injected delays, or the explorer provokes wrongful
    /// evictions of merely-slow members.
    pub max_polls: u64,
}

impl Default for PhaserConformConfig {
    fn default() -> Self {
        Self {
            platforms: vec![Platform::Kunpeng920],
            algorithms: AlgorithmId::PHASERS.to_vec(),
            scenarios: Scenario::CHURN.to_vec(),
            threads: 8,
            episodes: 5,
            seeds: 800,
            base_seed: 0xFA5E,
            explorer: ExplorerConfig::default(),
            op_budget: 4_000_000,
            max_polls: CHURN_SIM_MAX_POLLS,
        }
    }
}

/// One (platform, algorithm, scenario) cell of the phaser matrix.
#[derive(Debug, Clone)]
pub struct PhaserConformCell {
    /// Modeled machine.
    pub platform: Platform,
    /// Phaser under audit.
    pub algorithm: AlgorithmId,
    /// Churn script family searched.
    pub scenario: Scenario,
    /// Slots per trial (after clamping to the platform).
    pub threads: usize,
    /// Trials actually run (the search stops at the first violation).
    pub trials: u32,
    /// Distinct schedule fingerprints observed across those trials.
    pub distinct_schedules: usize,
    /// Violations found (at most one per cell; shrunk before reporting).
    pub violations: Vec<Violation>,
}

impl PhaserConformCell {
    /// Table status column.
    pub fn status(&self) -> &'static str {
        if self.violations.is_empty() {
            "ok"
        } else {
            "VIOLATED"
        }
    }

    /// Table detail column: the reproducer, or the schedule coverage.
    pub fn detail(&self) -> String {
        match self.violations.first() {
            None => format!("{} distinct schedules", self.distinct_schedules),
            Some(v) => format!(
                "{}: {} [replay: seed {:#x} budget {} rbudget {} episodes {}]",
                v.kind, v.detail, v.seed, v.budget, v.reorder_budget, v.episodes
            ),
        }
    }
}

/// Outcome of one trial: the schedule fingerprint, or a classified
/// violation.
type TrialResult = Result<u64, (ViolationKind, String)>;

/// A phaser factory taking `(arena, capacity, initial_members, topo)` —
/// the testing seam for deliberately broken phasers.
type PhaserFactory<'a> = &'a dyn Fn(&mut Arena, usize, usize, &Topology) -> Box<dyn Phaser>;

/// Runs one perturbed churn trial of `algorithm`.
fn run_phaser_trial(
    topo: &Arc<Topology>,
    algorithm: AlgorithmId,
    scenario: Scenario,
    cfg: &PhaserConformConfig,
    episodes: u32,
    seed: u64,
    explorer: ExplorerConfig,
) -> TrialResult {
    run_phaser_trial_with(
        topo,
        &|arena, cap, initial, t| {
            build_phaser(algorithm, arena, cap, initial, t)
                .expect("phaser conformance requires a phaser algorithm")
        },
        scenario,
        cfg,
        episodes,
        seed,
        explorer,
    )
}

/// [`run_phaser_trial`] with an arbitrary phaser factory.
pub(crate) fn run_phaser_trial_with(
    topo: &Arc<Topology>,
    build: PhaserFactory<'_>,
    scenario: Scenario,
    cfg: &PhaserConformConfig,
    episodes: u32,
    seed: u64,
    explorer: ExplorerConfig,
) -> TrialResult {
    let p = cfg.threads.min(topo.num_cores()).max(2);
    let plan = ChurnPlan::scenario(scenario, seed, p, episodes);
    let mut arena = Arena::new();
    let inner = build(&mut arena, p, plan.initial_members(), topo);
    let aux = arena.alloc_padded_u32(topo.cacheline_bytes());
    let robust = Arc::new(RobustPhaser::new(
        &mut arena,
        topo.cacheline_bytes(),
        inner,
        RobustConfig { max_polls: Some(cfg.max_polls), ..RobustConfig::default() },
    ));
    let verdicts = Arc::new(Mutex::new(vec![None; p]));
    let result = SimBuilder::new(Arc::clone(topo), p)
        .seed(seed)
        .op_budget(cfg.op_budget)
        .reserve_for(&arena)
        .schedule_policy(ExplorerPolicy::new(seed, explorer))
        .run({
            let robust = Arc::clone(&robust);
            let verdicts = Arc::clone(&verdicts);
            let plan = plan.clone();
            move |sim| {
                let v = churn_thread(&robust, sim, &plan, aux, episodes);
                verdicts.lock().unwrap()[sim.tid()] = Some(v);
            }
        });
    let stats = match result {
        Ok(stats) => stats,
        Err(SimError::Deadlock { waiters }) => {
            return Err((
                ViolationKind::LostWakeup,
                match waiters.first() {
                    Some(w) => format!("{} blocked; first: {w}", waiters.len()),
                    None => "all threads blocked".to_string(),
                },
            ))
        }
        Err(SimError::ThreadPanic { tid, message, .. }) => {
            return Err((ViolationKind::Panic, format!("t{tid}: {message}")))
        }
        Err(SimError::OpBudgetExhausted { ops, budget }) => {
            return Err((ViolationKind::Livelock, format!("{ops} ops exceeded budget {budget}")))
        }
    };
    let verdicts: Vec<ChurnVerdict> =
        verdicts.lock().unwrap().iter().cloned().map(Option::unwrap).collect();
    check_verdicts(&plan, &verdicts)?;
    check_membership_ledger(stats.marks(), p, plan.initial_members(), episodes)
        .map(|()| stats.schedule_hash())
}

/// Script-level oracle: every thread must end the way its script says —
/// only the scripted deserter may collect an eviction report, and nobody
/// may time out or observe poison.
fn check_verdicts(
    plan: &ChurnPlan,
    verdicts: &[ChurnVerdict],
) -> Result<(), (ViolationKind, String)> {
    let mut evicted: Vec<usize> = Vec::new();
    for (slot, v) in verdicts.iter().enumerate() {
        match v {
            ChurnVerdict::Done => {}
            ChurnVerdict::Evicted { .. } => evicted.push(slot),
            ChurnVerdict::Unexpected(why) => {
                return Err((ViolationKind::PhantomArrival, format!("t{slot}: {why}")))
            }
            ChurnVerdict::Error(BarrierError::Evicted { episode, .. }) => {
                return Err((
                    ViolationKind::LostMember,
                    format!("t{slot} evicted at epoch {episode} without a scripted desertion"),
                ))
            }
            ChurnVerdict::Error(e) => {
                return Err((ViolationKind::LostWakeup, format!("t{slot}: {e}")))
            }
        }
    }
    let expected: &[usize] =
        if plan.kind() == Scenario::CrashEvict { &[plan.victim()] } else { &[] };
    if evicted != expected {
        return Err((
            ViolationKind::LostMember,
            format!("eviction reports for slots {evicted:?}, script expects {expected:?}"),
        ));
    }
    Ok(())
}

/// The membership oracles, checked over the run's phaser event marks.
///
/// Replays each slot's events in virtual-time order against the committed
/// membership the marks themselves declare (`slot < initial` members from
/// epoch 1; `PH_JOINED` starts an interval at its acked epoch;
/// `PH_LEFT`/`PH_EVICTED` end it). A slot's completions must hit every
/// epoch of its interval exactly once and in order (**no lost member**),
/// and no event may fall outside an interval (**no phantom arrival**).
pub fn check_membership_ledger(
    marks: &[Mark],
    threads: usize,
    initial: usize,
    episodes: u32,
) -> Result<(), (ViolationKind, String)> {
    // The mark's 12-bit epoch field saturates at `PH_MARK_EPOCH_MAX`
    // rather than aliasing; a horizon at or past the ceiling would make
    // saturated marks indistinguishable from real completions of the cap
    // epoch, so the replay refuses outright instead of mis-judging.
    assert!(
        episodes < PH_MARK_EPOCH_MAX,
        "episode horizon {episodes} would saturate the phaser mark epoch field (max {})",
        PH_MARK_EPOCH_MAX - 1
    );
    // Events grouped by the mark's *slot field*, not its recording tid:
    // every kind is self-reported except `PH_EVICTED`, which the evictor
    // emits on the victim's behalf. The global mark slice is in virtual
    // commit order, so each group stays chronological.
    let mut events: Vec<Vec<(u32, u32)>> = vec![Vec::new(); threads];
    for m in marks {
        if let Some((kind, slot, epoch)) = decode_phaser_mark(m.label) {
            if slot >= threads {
                return Err((
                    ViolationKind::PhantomArrival,
                    format!("phaser mark for slot {slot} beyond the team of {threads}"),
                ));
            }
            events[slot].push((kind, epoch));
        }
    }
    for (slot, evs) in events.iter().enumerate() {
        let mut member = slot < initial;
        // The next epoch this slot owes the team a completion for.
        let mut due: u32 = 1;
        for &(kind, epoch) in evs {
            match kind {
                PH_JOINED => {
                    if member {
                        return Err((
                            ViolationKind::PhantomArrival,
                            format!("t{slot} joined at epoch {epoch} while already a member"),
                        ));
                    }
                    member = true;
                    due = epoch;
                }
                PH_COMPLETED => {
                    if !member {
                        return Err((
                            ViolationKind::PhantomArrival,
                            format!("t{slot} completed epoch {epoch} while not a member"),
                        ));
                    }
                    if epoch != due {
                        return Err((
                            ViolationKind::LostMember,
                            format!("t{slot} completed epoch {epoch}, expected {due}"),
                        ));
                    }
                    due += 1;
                }
                PH_LEFT => {
                    if !member {
                        return Err((
                            ViolationKind::PhantomArrival,
                            format!("t{slot} left at epoch {epoch} while not a member"),
                        ));
                    }
                    if epoch != due {
                        return Err((
                            ViolationKind::LostMember,
                            format!(
                                "t{slot} left at epoch {epoch} with completions through {}",
                                due - 1
                            ),
                        ));
                    }
                    member = false;
                }
                PH_EVICTED => {
                    if !member {
                        return Err((
                            ViolationKind::PhantomArrival,
                            format!("t{slot} evicted at epoch {epoch} while not a member"),
                        ));
                    }
                    if epoch != due {
                        return Err((
                            ViolationKind::LostMember,
                            format!(
                                "t{slot} evicted at epoch {epoch} with completions through {}",
                                due - 1
                            ),
                        ));
                    }
                    member = false;
                }
                other => {
                    return Err((
                        ViolationKind::PhantomArrival,
                        format!("t{slot}: unknown phaser event kind {other}"),
                    ))
                }
            }
        }
        // A slot still in the team at the end must have completed every
        // remaining epoch (a join acked past the last epoch owes nothing).
        if member && due <= episodes {
            return Err((
                ViolationKind::LostMember,
                format!(
                    "t{slot} is still a member but completed only through epoch {} of {episodes}",
                    due - 1
                ),
            ));
        }
    }
    Ok(())
}

/// Minimizes a failing churn trial exactly like the fixed checker's
/// shrink: smallest weak-memory reordering budget first, then the
/// smallest perturbation budget (0, 1, 2, 4, …) that still violates, then
/// the fewest episodes. The churn script re-derives from the seed at every
/// probe, so each probe is deterministic and the returned reproducer
/// exact.
fn shrink_with(
    topo: &Arc<Topology>,
    build: PhaserFactory<'_>,
    scenario: Scenario,
    cfg: &PhaserConformConfig,
    seed: u64,
    found: (ViolationKind, String),
) -> Violation {
    let mut budget = cfg.explorer.budget;
    let mut reorder_budget = cfg.explorer.reorder_budget;
    let mut episodes = cfg.episodes;
    let mut kind = found.0;
    let mut detail = found.1;

    let probe = |budget: u32, reorder_budget: u32, episodes: u32| {
        run_phaser_trial_with(
            topo,
            build,
            scenario,
            cfg,
            episodes,
            seed,
            cfg.explorer.with_budget(budget).with_reorder_budget(reorder_budget),
        )
        .err()
    };

    for &cand in &crate::checker::shrink_candidates(cfg.explorer.reorder_budget) {
        if let Some((k, d)) = probe(budget, cand, episodes) {
            reorder_budget = cand;
            kind = k;
            detail = d;
            break;
        }
    }
    for &cand in &crate::checker::shrink_candidates(cfg.explorer.budget) {
        if let Some((k, d)) = probe(cand, reorder_budget, episodes) {
            budget = cand;
            kind = k;
            detail = d;
            break;
        }
    }
    for e in 1..cfg.episodes {
        if let Some((k, d)) = probe(budget, reorder_budget, e) {
            episodes = e;
            kind = k;
            detail = d;
            break;
        }
    }
    Violation { kind, detail, seed, budget, reorder_budget, episodes }
}

/// Searches one (platform, algorithm, scenario) cell: up to `cfg.seeds`
/// trials, stopping at the first violation (shrunk before reporting).
fn run_phaser_cell(
    platform: Platform,
    algorithm: AlgorithmId,
    scenario: Scenario,
    cfg: &PhaserConformConfig,
) -> PhaserConformCell {
    let topo = Arc::new(Topology::preset(platform));
    let threads = cfg.threads.min(topo.num_cores()).max(2);
    let mut distinct: HashSet<u64> = HashSet::new();
    let mut violations = Vec::new();
    let mut trials = 0;
    for i in 0..cfg.seeds {
        let seed = trial_seed(cfg.base_seed, i);
        trials += 1;
        match run_phaser_trial(&topo, algorithm, scenario, cfg, cfg.episodes, seed, cfg.explorer) {
            Ok(hash) => {
                distinct.insert(hash);
            }
            Err(found) => {
                let build: PhaserFactory<'_> = &|arena, cap, initial, t| {
                    build_phaser(algorithm, arena, cap, initial, t)
                        .expect("phaser conformance requires a phaser algorithm")
                };
                violations.push(shrink_with(&topo, build, scenario, cfg, seed, found));
                break;
            }
        }
    }
    PhaserConformCell {
        platform,
        algorithm,
        scenario,
        threads,
        trials,
        distinct_schedules: distinct.len(),
        violations,
    }
}

/// Runs the phaser conformance matrix on the ambient [`SweepPool`].
pub fn phaser_conform_matrix(cfg: &PhaserConformConfig) -> Vec<PhaserConformCell> {
    phaser_conform_matrix_on(&SweepPool::ambient(), cfg)
}

/// [`phaser_conform_matrix`] on an explicit pool. Cells are pure functions
/// of the config, fan out as parallel jobs, and collect in submission
/// order — the rendered table is byte-identical at any worker count.
pub fn phaser_conform_matrix_on(
    pool: &SweepPool,
    cfg: &PhaserConformConfig,
) -> Vec<PhaserConformCell> {
    let mut jobs: Vec<Job<'_, PhaserConformCell>> = Vec::new();
    for &platform in &cfg.platforms {
        for &algorithm in &cfg.algorithms {
            for &scenario in &cfg.scenarios {
                jobs.push(Job::parallel(move || {
                    run_phaser_cell(platform, algorithm, scenario, cfg)
                }));
            }
        }
    }
    pool.run(jobs)
}

/// Renders phaser cells as CSV with a `#`-prefixed provenance header. No
/// wall-clock values, so equal configurations are byte-identical.
pub fn render_phaser_csv(cells: &[PhaserConformCell], cfg: &PhaserConformConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# conform-phasers: base seed {:#x}, seeds/cell {}, episodes {}, threads {}, \
         budget {}, rbudget {} (p={}), max polls {}\n",
        cfg.base_seed,
        cfg.seeds,
        cfg.episodes,
        cfg.threads,
        cfg.explorer.budget,
        cfg.explorer.reorder_budget,
        cfg.explorer.reorder_prob,
        cfg.max_polls,
    ));
    out.push_str(
        "platform,threads,algorithm,scenario,trials,distinct_schedules,violations,status,detail\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            c.platform.label(),
            c.threads,
            c.algorithm.label(),
            c.scenario.label(),
            c.trials,
            c.distinct_schedules,
            c.violations.len(),
            c.status(),
            c.detail().replace(',', ";")
        ));
    }
    out
}

/// Renders phaser cells as a JSON document (same fields as the CSV, plus
/// the full shrunk reproducer per violation).
pub fn render_phaser_json(cells: &[PhaserConformCell], cfg: &PhaserConformConfig) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"base_seed\": {},\n", cfg.base_seed));
    out.push_str(&format!("  \"seeds_per_cell\": {},\n", cfg.seeds));
    out.push_str(&format!("  \"episodes\": {},\n", cfg.episodes));
    out.push_str(&format!("  \"threads\": {},\n", cfg.threads));
    out.push_str(&format!("  \"max_polls\": {},\n", cfg.max_polls));
    out.push_str(&format!("  \"reorder_budget\": {},\n", cfg.explorer.reorder_budget));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"platform\": \"{}\", \"threads\": {}, \"algorithm\": \"{}\", \
             \"scenario\": \"{}\", \"trials\": {}, \"distinct_schedules\": {}, \
             \"status\": \"{}\", \"violations\": [",
            c.platform.label(),
            c.threads,
            c.algorithm.label(),
            c.scenario.label(),
            c.trials,
            c.distinct_schedules,
            c.status(),
        ));
        for (j, v) in c.violations.iter().enumerate() {
            out.push_str(&format!(
                "{{\"kind\": \"{}\", \"seed\": {}, \"budget\": {}, \"reorder_budget\": {}, \
                 \"episodes\": {}, \"detail\": \"{}\"}}{}",
                v.kind,
                v.seed,
                v.budget,
                v.reorder_budget,
                v.episodes,
                v.detail.replace('"', "'"),
                if j + 1 < c.violations.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!("]}}{}\n", if i + 1 < cells.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_core::phaser::phaser_mark;
    use armbar_core::{CentralPhaser, MemCtx};

    fn quick_cfg() -> PhaserConformConfig {
        PhaserConformConfig { threads: 4, episodes: 4, seeds: 12, ..PhaserConformConfig::default() }
    }

    #[test]
    fn weak_churn_interleavings_conform_for_both_phasers() {
        // The weak-memory search composed with churn: the phasers' fully
        // ordered membership/arrival protocol must survive reordered
        // schedules on every churn scenario.
        let cfg = PhaserConformConfig {
            explorer: ExplorerConfig { reorder_prob: 0.8, ..ExplorerConfig::default() }
                .with_reorder_budget(16),
            ..quick_cfg()
        };
        let cells = phaser_conform_matrix_on(&SweepPool::new(2), &cfg);
        for c in &cells {
            assert!(
                c.violations.is_empty(),
                "{} under {}: {}",
                c.algorithm.label(),
                c.scenario.label(),
                c.detail()
            );
        }
    }

    #[test]
    fn churn_interleavings_conform_for_both_phasers() {
        let cells = phaser_conform_matrix_on(&SweepPool::new(2), &quick_cfg());
        assert_eq!(cells.len(), AlgorithmId::PHASERS.len() * Scenario::CHURN.len());
        for c in &cells {
            assert!(
                c.violations.is_empty(),
                "{} under {}: {}",
                c.algorithm.label(),
                c.scenario.label(),
                c.detail()
            );
            assert_eq!(c.trials, 12);
        }
    }

    #[test]
    fn phaser_matrix_is_identical_at_any_worker_count() {
        let cfg = quick_cfg();
        let serial = phaser_conform_matrix_on(&SweepPool::new(1), &cfg);
        let parallel = phaser_conform_matrix_on(&SweepPool::new(4), &cfg);
        assert_eq!(render_phaser_csv(&serial, &cfg), render_phaser_csv(&parallel, &cfg));
    }

    fn mk(kind: u32, slot: usize, epoch: u32, t: f64) -> Mark {
        Mark { tid: slot, label: phaser_mark(kind, slot, epoch), time_ns: t }
    }

    #[test]
    fn ledger_accepts_a_legal_flap() {
        // Slot 1 completes 1, leaves at 2, rejoins at 4, completes 4..=5;
        // slot 0 is steady throughout.
        let marks = [
            mk(PH_COMPLETED, 0, 1, 0.0),
            mk(PH_COMPLETED, 1, 1, 1.0),
            mk(PH_LEFT, 1, 2, 2.0),
            mk(PH_COMPLETED, 0, 2, 3.0),
            mk(PH_COMPLETED, 0, 3, 4.0),
            mk(PH_JOINED, 1, 4, 5.0),
            mk(PH_COMPLETED, 0, 4, 6.0),
            mk(PH_COMPLETED, 1, 4, 7.0),
            mk(PH_COMPLETED, 0, 5, 8.0),
            mk(PH_COMPLETED, 1, 5, 9.0),
        ];
        assert!(check_membership_ledger(&marks, 2, 2, 5).is_ok());
    }

    #[test]
    fn ledger_rejects_a_gapped_completion_run() {
        let marks = [
            mk(PH_COMPLETED, 0, 1, 0.0),
            mk(PH_COMPLETED, 0, 3, 1.0), // skipped epoch 2
        ];
        let (kind, detail) = check_membership_ledger(&marks, 1, 1, 3).unwrap_err();
        assert_eq!(kind, ViolationKind::LostMember, "{detail}");
    }

    #[test]
    fn ledger_rejects_a_phantom_completion() {
        // Slot 1 never joined (initial membership is slot 0 only).
        let marks = [mk(PH_COMPLETED, 0, 1, 0.0), mk(PH_COMPLETED, 1, 1, 1.0)];
        let (kind, detail) = check_membership_ledger(&marks, 2, 1, 1).unwrap_err();
        assert_eq!(kind, ViolationKind::PhantomArrival, "{detail}");
    }

    #[test]
    fn ledger_rejects_a_missing_tail() {
        // A steady member that stops completing before the last epoch.
        let marks = [mk(PH_COMPLETED, 0, 1, 0.0)];
        let (kind, detail) = check_membership_ledger(&marks, 1, 1, 3).unwrap_err();
        assert_eq!(kind, ViolationKind::LostMember, "{detail}");
    }

    #[test]
    fn ledger_rejects_activity_after_a_leave() {
        let marks = [
            mk(PH_COMPLETED, 0, 1, 0.0),
            mk(PH_LEFT, 0, 2, 1.0),
            mk(PH_EVICTED, 0, 3, 2.0), // evicting a slot that already left
        ];
        let (kind, detail) = check_membership_ledger(&marks, 1, 1, 3).unwrap_err();
        assert_eq!(kind, ViolationKind::PhantomArrival, "{detail}");
    }

    /// A phaser whose `deregister` *lies*: it reports an orderly leave
    /// (emitting `PH_LEFT` and arriving one last time) but never files the
    /// `LEAVE_REQ`, so the membership word still counts the slot. The next
    /// epoch stalls on a "member" that will never arrive again, the
    /// survivors evict it, and the ledger shows an eviction of a slot that
    /// already left — the membership oracles must catch this.
    struct LyingLeaver {
        inner: CentralPhaser,
    }

    impl Phaser for LyingLeaver {
        fn request_join(&self, ctx: &dyn MemCtx) -> u32 {
            self.inner.request_join(ctx)
        }
        fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32 {
            self.inner.await_join(ctx, token)
        }
        fn arrive(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
            self.inner.arrive(ctx)
        }
        fn wait_epoch(&self, ctx: &dyn MemCtx, epoch: u32) {
            self.inner.wait_epoch(ctx, epoch)
        }
        fn deregister(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
            let e = self.inner.arrive(ctx)?; // the bug: no LEAVE_REQ store
            ctx.mark(phaser_mark(PH_LEFT, ctx.tid(), e));
            Ok(e)
        }
        fn find_victim(&self, ctx: &dyn MemCtx, epoch: u32) -> Option<usize> {
            self.inner.find_victim(ctx, epoch)
        }
        fn evict(&self, ctx: &dyn MemCtx, victim: usize, epoch: u32) -> bool {
            self.inner.evict(ctx, victim, epoch)
        }
        fn epoch(&self, ctx: &dyn MemCtx) -> u32 {
            self.inner.epoch(ctx)
        }
        fn members(&self, ctx: &dyn MemCtx) -> u32 {
            self.inner.members(ctx)
        }
        fn name(&self) -> &str {
            "LYING-LEAVER"
        }
    }

    #[test]
    fn broken_phaser_is_caught_shrunk_and_replayable() {
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let cfg = quick_cfg();
        let build: PhaserFactory<'_> = &|arena, cap, initial, t| {
            Box::new(LyingLeaver { inner: CentralPhaser::new(arena, cap, initial, t) })
        };
        let mut caught = None;
        for i in 0..50u32 {
            let seed = trial_seed(0xBAD, i);
            if let Err(found) = run_phaser_trial_with(
                &topo,
                build,
                Scenario::Leave,
                &cfg,
                cfg.episodes,
                seed,
                cfg.explorer,
            ) {
                caught = Some((seed, found));
                break;
            }
        }
        let (seed, found) = caught.expect("the churn search must expose the lying deregister");
        assert!(
            matches!(found.0, ViolationKind::LostMember | ViolationKind::PhantomArrival),
            "{}: {}",
            found.0,
            found.1
        );
        // The shrunk reproducer replays deterministically with a
        // membership-oracle verdict.
        let v = shrink_with(&topo, build, Scenario::Leave, &cfg, seed, found);
        assert!(v.budget <= cfg.explorer.budget && v.episodes <= cfg.episodes);
        let replay = run_phaser_trial_with(
            &topo,
            build,
            Scenario::Leave,
            &cfg,
            v.episodes,
            seed,
            cfg.explorer.with_budget(v.budget).with_reorder_budget(v.reorder_budget),
        );
        assert_eq!(replay.err().map(|(k, _)| k), Some(v.kind));
    }
}

//! Litmus-style checks of the bounded weak-memory mode (DESIGN.md §15).
//!
//! Each test runs a classic two-to-four-thread litmus shape over many
//! seeded trials under the [`ExplorerPolicy`] and collects the set of
//! observed outcomes, then asserts **reachability** of outcomes ARMv8
//! permits for relaxed accesses (message passing with an unordered flag,
//! store buffering) and **unreachability** of outcomes the
//! acquire/release annotations must forbid (the same shapes with ordered
//! accesses, coherence-order violations, IRIW disagreement under acquire
//! loads).
//!
//! The model is a deliberate *under*-approximation of ARMv8: it has store
//! buffering (W→W and W→R reordering of relaxed stores) and stale reads
//! (R→R reordering of relaxed loads against remote commits), but no load
//! buffering — a load can never observe a store that has not yet
//! committed or been buffered by its own thread. The load-buffering test
//! pins that boundary so a future engine change that accidentally crosses
//! it fails loudly.

#![cfg(test)]

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use armbar_core::MemCtx;
use armbar_simcoh::{Addr, Arena, SimBuilder, SimThread};
use armbar_topology::{Platform, Topology};

use crate::checker::trial_seed;
use crate::explorer::{ExplorerConfig, ExplorerPolicy};

/// Bounded poll count for flag-waiting litmus readers. A bound (instead
/// of a spin) keeps every trial terminating even when the signalling
/// store stays buffered for the whole run.
const POLLS: usize = 64;

/// Exploration config with the weak-memory search on: high reorder
/// probability so small seed sets cover the interesting choices.
fn weak_cfg() -> ExplorerConfig {
    ExplorerConfig { reorder_prob: 0.8, ..ExplorerConfig::default() }.with_reorder_budget(8)
}

/// The same interleaving search with the weak-memory search off.
fn sc_cfg() -> ExplorerConfig {
    weak_cfg().with_reorder_budget(0)
}

/// Runs `body` on every thread of `seeds` seeded trials; each thread
/// returns its observation vector, and one trial's outcome is the
/// concatenation of all threads' observations in tid order. Returns the
/// set of distinct outcomes.
fn outcomes<F>(
    seeds: u32,
    cfg: ExplorerConfig,
    threads: usize,
    nvars: usize,
    body: F,
) -> BTreeSet<Vec<u32>>
where
    F: Fn(&dyn MemCtx, &[Addr]) -> Vec<u32> + Send + Sync + Clone + 'static,
{
    let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
    let mut set = BTreeSet::new();
    for i in 0..seeds {
        let seed = trial_seed(0x117_0005, i);
        let mut arena = Arena::new();
        let line = topo.cacheline_bytes();
        let vars: Arc<Vec<Addr>> =
            Arc::new((0..nvars).map(|_| arena.alloc_padded_u32(line)).collect());
        let obs: Arc<Mutex<Vec<(usize, Vec<u32>)>>> = Arc::new(Mutex::new(Vec::new()));
        let body = body.clone();
        let (vars, obs2) = (Arc::clone(&vars), Arc::clone(&obs));
        SimBuilder::new(Arc::clone(&topo), threads)
            .seed(seed)
            .reserve_for(&arena)
            .schedule_policy(ExplorerPolicy::new(seed, cfg))
            .run(move |sim: &SimThread| {
                let o = body(sim, &vars);
                obs2.lock().unwrap().push((MemCtx::tid(sim), o));
            })
            .expect("litmus bodies are bounded and must not fault");
        let mut per = obs.lock().unwrap().clone();
        per.sort();
        set.insert(per.into_iter().flat_map(|(_, v)| v).collect());
    }
    set
}

/// Reader half of message passing: bounded-polls `flag` with an acquire
/// load, then acquire-loads `data`. Returns `[saw_flag, data]`.
fn mp_reader_acquire(ctx: &dyn MemCtx, flag: Addr, data: Addr) -> Vec<u32> {
    for _ in 0..POLLS {
        if ctx.load(flag) == 1 {
            return vec![1, ctx.load(data)];
        }
    }
    vec![0, 0]
}

#[test]
fn mp_relaxed_flag_reaches_the_stale_data_outcome() {
    // MP with an unordered (str/ldr) flag: ARMv8 permits the reader to
    // see the flag before the data — here via W→W reordering, the writer's
    // data store deferred into its buffer while the flag commits.
    let set = outcomes(300, weak_cfg(), 2, 2, |ctx, v| {
        let (data, flag) = (v[0], v[1]);
        match ctx.tid() {
            0 => {
                ctx.store_relaxed(data, 1);
                ctx.store_relaxed(flag, 1);
                vec![]
            }
            _ => mp_reader_acquire(ctx, flag, data),
        }
    });
    assert!(
        set.contains(&vec![1, 0]),
        "flag-before-data must be reachable with a relaxed flag store; saw {set:?}"
    );
}

#[test]
fn mp_release_flag_forbids_the_stale_data_outcome() {
    // The same shape with a release (stlr) flag store: the release
    // flushes the writer's buffer, so flag=1 implies data=1.
    for cfg in [weak_cfg(), sc_cfg()] {
        let set = outcomes(300, cfg, 2, 2, |ctx, v| {
            let (data, flag) = (v[0], v[1]);
            match ctx.tid() {
                0 => {
                    ctx.store_relaxed(data, 1);
                    ctx.store(flag, 1);
                    vec![]
                }
                _ => mp_reader_acquire(ctx, flag, data),
            }
        });
        assert!(
            !set.contains(&vec![1, 0]),
            "release flag + acquire reads must forbid flag-before-data; saw {set:?}"
        );
    }
}

#[test]
fn mp_relaxed_read_reaches_the_stale_cache_outcome() {
    // Fully ordered writer, but the reader re-reads the data relaxed
    // after having observed the old value: ARMv8 permits the second read
    // to be satisfied early (R→R reordering) — here from the stale cache.
    let set = outcomes(300, weak_cfg(), 2, 2, |ctx, v| {
        let (data, flag) = (v[0], v[1]);
        match ctx.tid() {
            0 => {
                ctx.store(data, 1);
                ctx.store(flag, 1);
                vec![]
            }
            _ => {
                ctx.load_relaxed(data); // warm the stale cache with 0 (or 1)
                for _ in 0..POLLS {
                    if ctx.load_relaxed(flag) == 1 {
                        return vec![1, ctx.load_relaxed(data)];
                    }
                }
                vec![0, 0]
            }
        }
    });
    assert!(
        set.contains(&vec![1, 0]),
        "a relaxed re-read after the flag must be servable stale; saw {set:?}"
    );
}

#[test]
fn mp_acquire_read_forbids_the_stale_cache_outcome() {
    // The reader's final load is acquire: it invalidates the stale cache
    // and must observe the committed data the release chain published.
    let set = outcomes(300, weak_cfg(), 2, 2, |ctx, v| {
        let (data, flag) = (v[0], v[1]);
        match ctx.tid() {
            0 => {
                ctx.store(data, 1);
                ctx.store(flag, 1);
                vec![]
            }
            _ => {
                ctx.load_relaxed(data);
                for _ in 0..POLLS {
                    if ctx.load_relaxed(flag) == 1 {
                        return vec![1, ctx.load(data)];
                    }
                }
                vec![0, 0]
            }
        }
    });
    assert!(
        !set.contains(&vec![1, 0]),
        "an acquire read after the flag must see the published data; saw {set:?}"
    );
}

#[test]
fn sb_relaxed_reaches_both_zero() {
    // Store buffering: with relaxed stores, both threads may defer their
    // store and read the other's variable as 0 — the signature ARMv8
    // (and even x86-TSO) weak outcome.
    let set = outcomes(300, weak_cfg(), 2, 2, |ctx, v| {
        let (x, y) = (v[0], v[1]);
        match ctx.tid() {
            0 => {
                ctx.store_relaxed(x, 1);
                vec![ctx.load(y)]
            }
            _ => {
                ctx.store_relaxed(y, 1);
                vec![ctx.load(x)]
            }
        }
    });
    assert!(set.contains(&vec![0, 0]), "SB both-zero must be reachable; saw {set:?}");
}

#[test]
fn sb_fenced_forbids_both_zero() {
    // A full fence between the store and the load drains the buffer, so
    // at least one thread must see the other's store — and so must the
    // relaxed version when the reordering search is off.
    let fenced = outcomes(300, weak_cfg(), 2, 2, |ctx, v| {
        let (x, y) = (v[0], v[1]);
        match ctx.tid() {
            0 => {
                ctx.store_relaxed(x, 1);
                ctx.fence();
                vec![ctx.load(y)]
            }
            _ => {
                ctx.store_relaxed(y, 1);
                ctx.fence();
                vec![ctx.load(x)]
            }
        }
    });
    assert!(!fenced.contains(&vec![0, 0]), "fenced SB must forbid both-zero; saw {fenced:?}");
    let sc = outcomes(100, sc_cfg(), 2, 2, |ctx, v| {
        let (x, y) = (v[0], v[1]);
        match ctx.tid() {
            0 => {
                ctx.store_relaxed(x, 1);
                vec![ctx.load(y)]
            }
            _ => {
                ctx.store_relaxed(y, 1);
                vec![ctx.load(x)]
            }
        }
    });
    assert!(!sc.contains(&vec![0, 0]), "reorder budget 0 must forbid both-zero; saw {sc:?}");
}

#[test]
fn lb_both_one_is_unreachable() {
    // Load buffering (each thread reads the other's yet-unwritten
    // variable as 1) is ARMv8-permitted for relaxed accesses but
    // deliberately outside this model: loads never observe uncommitted
    // remote stores. Pin the boundary.
    let set = outcomes(300, weak_cfg(), 2, 2, |ctx, v| {
        let (x, y) = (v[0], v[1]);
        match ctx.tid() {
            0 => {
                let r = ctx.load_relaxed(y);
                ctx.store_relaxed(x, 1);
                vec![r]
            }
            _ => {
                let r = ctx.load_relaxed(x);
                ctx.store_relaxed(y, 1);
                vec![r]
            }
        }
    });
    assert!(
        !set.contains(&vec![1, 1]),
        "the model must not exhibit load buffering (documented under-approximation); saw {set:?}"
    );
}

/// IRIW body: tids 0/1 write `x`/`y`; tids 2/3 warm both caches then read
/// the two variables in opposite orders, acquire or relaxed.
fn iriw_body(ctx: &dyn MemCtx, v: &[Addr], acquire: bool) -> Vec<u32> {
    let (x, y) = (v[0], v[1]);
    let rd = |a: Addr| if acquire { ctx.load(a) } else { ctx.load_relaxed(a) };
    match ctx.tid() {
        0 => {
            ctx.store(x, 1);
            vec![]
        }
        1 => {
            ctx.store(y, 1);
            vec![]
        }
        t => {
            ctx.load_relaxed(x);
            ctx.load_relaxed(y);
            let (first, second) = if t == 2 { (x, y) } else { (y, x) };
            for _ in 0..POLLS {
                if rd(first) == 1 {
                    return vec![1, rd(second)];
                }
            }
            vec![0, 0]
        }
    }
}

#[test]
fn iriw_acquire_readers_agree_on_commit_order() {
    // With acquire reads the commit order is a single global order:
    // reader 2 seeing x-then-not-y AND reader 3 seeing y-then-not-x
    // would require contradictory commit orders.
    let set = outcomes(300, weak_cfg(), 4, 2, |ctx, v| iriw_body(ctx, v, true));
    assert!(
        !set.contains(&vec![1, 0, 1, 0]),
        "acquire IRIW readers must agree on the write order; saw {set:?}"
    );
}

#[test]
fn iriw_relaxed_readers_may_disagree() {
    // With relaxed reads each reader may satisfy its second read from
    // its own stale cache, so the two may disagree on the write order —
    // permitted on ARMv8 for unordered loads (no dependency, no
    // barrier).
    let set = outcomes(600, weak_cfg(), 4, 2, |ctx, v| iriw_body(ctx, v, false));
    assert!(
        set.contains(&vec![1, 0, 1, 0]),
        "relaxed IRIW readers must be able to disagree; saw {set:?}"
    );
}

#[test]
fn corr_same_location_reads_never_go_backward() {
    // Coherence (CoRR): two relaxed reads of the same location must not
    // observe values in an order contradicting coherence order — a stale
    // serve returns the *last observed* value, never an older one.
    let set = outcomes(300, weak_cfg(), 2, 1, |ctx, v| {
        let x = v[0];
        match ctx.tid() {
            0 => {
                ctx.store(x, 1);
                vec![]
            }
            _ => {
                let mut prev = 0;
                let mut went_backward = 0;
                for _ in 0..POLLS {
                    let r = ctx.load_relaxed(x);
                    if r < prev {
                        went_backward = 1;
                    }
                    prev = r;
                }
                vec![went_backward]
            }
        }
    });
    assert!(
        !set.contains(&vec![1]),
        "same-location relaxed reads must respect coherence order; saw {set:?}"
    );
}

//! Trial runner, safety-oracle classification, and the conformance matrix.
//!
//! One *trial* = one seeded, perturbed simulation of `episodes` audited
//! barrier episodes (`Barrier::wait_conformed`) on one (platform,
//! algorithm) pair. Trials are pure functions of their seed, so every
//! violation is replayable; a shrinking pass then minimizes the
//! perturbation budget and episode count of the reproducer.

use std::collections::HashSet;
use std::sync::Arc;

use armbar_core::env::{MARK_ENTER, MARK_EXIT};
use armbar_core::{AlgorithmId, Barrier, EpisodeOracle};
use armbar_simcoh::stats::Mark;
use armbar_simcoh::{Arena, SimBuilder, SimError};
use armbar_sweep::{Job, SweepPool};
use armbar_topology::{Platform, Topology};

use crate::explorer::{ExplorerConfig, ExplorerPolicy};

/// What to check: the cross product of platforms × algorithms, each cell
/// searched over `seeds` perturbed schedules.
#[derive(Debug, Clone)]
pub struct ConformConfig {
    /// Modeled machines to check on.
    pub platforms: Vec<Platform>,
    /// Barrier algorithms under audit.
    pub algorithms: Vec<AlgorithmId>,
    /// Participating threads per trial (clamped to the platform's cores).
    pub threads: usize,
    /// Audited barrier episodes per trial.
    pub episodes: u32,
    /// Seeded schedules searched per (platform, algorithm) cell.
    pub seeds: u32,
    /// Master seed; trial seeds derive from it.
    pub base_seed: u64,
    /// Exploration tuning (perturbation probabilities and budget).
    pub explorer: ExplorerConfig,
    /// Engine op budget per trial (perturbation delays count against it).
    pub op_budget: u64,
}

impl Default for ConformConfig {
    fn default() -> Self {
        Self {
            platforms: vec![Platform::Kunpeng920],
            // Every fixed-membership algorithm: the paper's 14 plus the
            // shyper contender barriers — lock-guarded counters are where
            // schedule exploration finds reuse bugs (a stranded straggler
            // spinning on a reset count), so they ride in the default
            // sweep and in `conform --quick`.
            algorithms: AlgorithmId::ALL.into_iter().chain(AlgorithmId::CONTENDERS).collect(),
            threads: 8,
            episodes: 2,
            seeds: 200,
            base_seed: 0xC0F0,
            explorer: ExplorerConfig::default(),
            op_budget: 4_000_000,
        }
    }
}

/// The safety property a failing trial violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A thread left episode `k` before every peer had entered it.
    EarlyExit,
    /// Episode numbering skewed by more than one across threads.
    EpochSkew,
    /// The episode hung: some thread never observed a release.
    LostWakeup,
    /// The engine's op budget tripped — a live-lock under this schedule.
    Livelock,
    /// The per-thread `ENTER`/`EXIT` phase marks did not balance and
    /// alternate — residual work leaked across episodes.
    Quiescence,
    /// The barrier body panicked for a non-oracle reason.
    Panic,
    /// A phaser member's completion ledger broke: a gap, a repeat, a
    /// missing tail, or an eviction of a slot that never deserted.
    LostMember,
    /// Phaser activity outside the committed membership: an arrival,
    /// leave, or eviction recorded for a slot that was not a member.
    PhantomArrival,
}

impl ViolationKind {
    /// Stable table label.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::EarlyExit => "early-exit",
            ViolationKind::EpochSkew => "epoch-skew",
            ViolationKind::LostWakeup => "lost-wakeup",
            ViolationKind::Livelock => "livelock",
            ViolationKind::Quiescence => "quiescence",
            ViolationKind::Panic => "panic",
            ViolationKind::LostMember => "lost-member",
            ViolationKind::PhantomArrival => "phantom-arrival",
        }
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A confirmed oracle violation with its minimal deterministic reproducer:
/// re-running the same (platform, algorithm, threads) trial with
/// `--schedule-seed seed`, the recorded budget, and `episodes` replays it
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Violated property.
    pub kind: ViolationKind,
    /// Human-readable diagnostic from the oracle or engine.
    pub detail: String,
    /// Trial seed reproducing the violation.
    pub seed: u64,
    /// Minimal perturbation budget that still reproduces it (0 = the
    /// violation needs no perturbation at all).
    pub budget: u32,
    /// Minimal weak-memory reordering budget that still reproduces it
    /// (0 = the violation is a scheduling bug, reproducible under
    /// sequential consistency; > 0 = a genuine memory-ordering bug).
    pub reorder_budget: u32,
    /// Minimal episode count that still reproduces it.
    pub episodes: u32,
}

/// One (platform, algorithm) cell of the conformance matrix.
#[derive(Debug, Clone)]
pub struct ConformCell {
    /// Modeled machine.
    pub platform: Platform,
    /// Algorithm under audit.
    pub algorithm: AlgorithmId,
    /// Threads per trial (after clamping to the platform).
    pub threads: usize,
    /// Trials actually run (the search stops at the first violation).
    pub trials: u32,
    /// Distinct schedule fingerprints observed across those trials.
    pub distinct_schedules: usize,
    /// Violations found (at most one per cell; shrunk before reporting).
    pub violations: Vec<Violation>,
}

impl ConformCell {
    /// Table status column.
    pub fn status(&self) -> &'static str {
        if self.violations.is_empty() {
            "ok"
        } else {
            "VIOLATED"
        }
    }

    /// Table detail column: the reproducer, or the schedule coverage.
    pub fn detail(&self) -> String {
        match self.violations.first() {
            None => format!("{} distinct schedules", self.distinct_schedules),
            Some(v) => format!(
                "{}: {} [replay: seed {:#x} budget {} rbudget {} episodes {}]",
                v.kind, v.detail, v.seed, v.budget, v.reorder_budget, v.episodes
            ),
        }
    }
}

/// The i-th trial seed of a search (golden-ratio stride keeps neighboring
/// trials decorrelated while staying replayable from `base` alone).
pub fn trial_seed(base: u64, i: u32) -> u64 {
    base.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1
}

/// Outcome of one trial: the schedule fingerprint, or a classified
/// violation.
type TrialResult = Result<u64, (ViolationKind, String)>;

/// Runs one audited, perturbed trial of `algorithm`.
fn run_trial(
    topo: &Arc<Topology>,
    algorithm: AlgorithmId,
    threads: usize,
    episodes: u32,
    seed: u64,
    explorer: ExplorerConfig,
    op_budget: u64,
) -> TrialResult {
    run_trial_with(
        topo,
        &|arena, p, t| algorithm.build(arena, p, t),
        threads,
        episodes,
        seed,
        explorer,
        op_budget,
    )
}

/// [`run_trial`] with an arbitrary barrier factory — the testing seam for
/// deliberately broken barriers.
pub(crate) fn run_trial_with(
    topo: &Arc<Topology>,
    build: &dyn Fn(&mut Arena, usize, &Topology) -> Box<dyn Barrier>,
    threads: usize,
    episodes: u32,
    seed: u64,
    explorer: ExplorerConfig,
    op_budget: u64,
) -> TrialResult {
    let p = threads.min(topo.num_cores()).max(1);
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(build(&mut arena, p, topo));
    let oracle = EpisodeOracle::new(&mut arena, p, topo.cacheline_bytes());
    let result = SimBuilder::new(Arc::clone(topo), p)
        .seed(seed)
        .op_budget(op_budget)
        .reserve_for(&arena)
        .schedule_policy(ExplorerPolicy::new(seed, explorer))
        .run(move |sim| {
            for e in 1..=episodes {
                barrier.wait_conformed(sim, &oracle, e);
            }
        });
    match result {
        Ok(stats) => match check_quiescence(stats.marks(), p, episodes) {
            Ok(()) => Ok(stats.schedule_hash()),
            Err(detail) => Err((ViolationKind::Quiescence, detail)),
        },
        Err(SimError::Deadlock { waiters }) => Err((
            ViolationKind::LostWakeup,
            match waiters.first() {
                Some(w) => format!("{} blocked; first: {w}", waiters.len()),
                None => "all threads blocked".to_string(),
            },
        )),
        Err(SimError::ThreadPanic { tid, message, .. }) => {
            let kind = if message.contains("early exit") {
                ViolationKind::EarlyExit
            } else if message.contains("epoch skew") {
                ViolationKind::EpochSkew
            } else {
                ViolationKind::Panic
            };
            Err((kind, format!("t{tid}: {message}")))
        }
        Err(SimError::OpBudgetExhausted { ops, budget }) => {
            Err((ViolationKind::Livelock, format!("{ops} ops exceeded budget {budget}")))
        }
    }
}

/// The quiescence oracle: each thread's phase marks must be exactly
/// `episodes` alternating `ENTER`/`EXIT` pairs — an unbalanced or
/// out-of-order sequence means an episode leaked work into the next one.
pub fn check_quiescence(marks: &[Mark], threads: usize, episodes: u32) -> Result<(), String> {
    for tid in 0..threads {
        let seq: Vec<u32> = marks
            .iter()
            .filter(|m| m.tid == tid && (m.label == MARK_ENTER || m.label == MARK_EXIT))
            .map(|m| m.label)
            .collect();
        if seq.len() != 2 * episodes as usize {
            return Err(format!(
                "thread {tid}: {} phase marks for {episodes} episodes (want {})",
                seq.len(),
                2 * episodes
            ));
        }
        for (i, &label) in seq.iter().enumerate() {
            let want = if i % 2 == 0 { MARK_ENTER } else { MARK_EXIT };
            if label != want {
                return Err(format!(
                    "thread {tid}: phase mark {i} is {label:#x}, want {want:#x} \
                     (episodes must strictly alternate enter/exit)"
                ));
            }
        }
    }
    Ok(())
}

/// Powers-of-two shrink ladder below `limit`: 0, 1, 2, 4, … .
pub(crate) fn shrink_candidates(limit: u32) -> Vec<u32> {
    let mut candidates: Vec<u32> = vec![0];
    let mut b = 1;
    while b < limit {
        candidates.push(b);
        b *= 2;
    }
    candidates
}

/// Minimizes a failing trial: smallest weak-memory reordering budget first
/// (so a reproducer at rbudget 0 is provably a scheduling bug, not a
/// memory-ordering bug), then the smallest perturbation budget
/// (0, 1, 2, 4, …) that still violates, then the smallest episode count.
/// Every probe is deterministic, so the returned reproducer is exact.
fn shrink(
    topo: &Arc<Topology>,
    algorithm: AlgorithmId,
    cfg: &ConformConfig,
    seed: u64,
    found: (ViolationKind, String),
) -> Violation {
    let mut budget = cfg.explorer.budget;
    let mut reorder_budget = cfg.explorer.reorder_budget;
    let mut episodes = cfg.episodes;
    let mut kind = found.0;
    let mut detail = found.1;

    let probe = |budget: u32, reorder_budget: u32, episodes: u32| {
        run_trial(
            topo,
            algorithm,
            cfg.threads,
            episodes,
            seed,
            cfg.explorer.with_budget(budget).with_reorder_budget(reorder_budget),
            cfg.op_budget,
        )
        .err()
    };

    for &cand in &shrink_candidates(cfg.explorer.reorder_budget) {
        if let Some((k, d)) = probe(budget, cand, episodes) {
            reorder_budget = cand;
            kind = k;
            detail = d;
            break;
        }
    }
    for &cand in &shrink_candidates(cfg.explorer.budget) {
        if let Some((k, d)) = probe(cand, reorder_budget, episodes) {
            budget = cand;
            kind = k;
            detail = d;
            break;
        }
    }
    for e in 1..cfg.episodes {
        if let Some((k, d)) = probe(budget, reorder_budget, e) {
            episodes = e;
            kind = k;
            detail = d;
            break;
        }
    }
    Violation { kind, detail, seed, budget, reorder_budget, episodes }
}

/// Searches one (platform, algorithm) cell: runs up to `cfg.seeds` trials,
/// counting distinct schedule fingerprints, and stops at the first
/// violation (which it shrinks before reporting).
fn run_cell(platform: Platform, algorithm: AlgorithmId, cfg: &ConformConfig) -> ConformCell {
    let topo = Arc::new(Topology::preset(platform));
    let threads = cfg.threads.min(topo.num_cores()).max(1);
    let mut distinct: HashSet<u64> = HashSet::new();
    let mut violations = Vec::new();
    let mut trials = 0;
    for i in 0..cfg.seeds {
        let seed = trial_seed(cfg.base_seed, i);
        trials += 1;
        match run_trial(&topo, algorithm, threads, cfg.episodes, seed, cfg.explorer, cfg.op_budget)
        {
            Ok(hash) => {
                distinct.insert(hash);
            }
            Err(found) => {
                violations.push(shrink(&topo, algorithm, cfg, seed, found));
                break;
            }
        }
    }
    ConformCell {
        platform,
        algorithm,
        threads,
        trials,
        distinct_schedules: distinct.len(),
        violations,
    }
}

/// Runs the conformance matrix on the ambient [`SweepPool`]
/// (`--jobs`/`ARMBAR_JOBS` workers). One cell per (platform, algorithm),
/// in listed order.
pub fn conform_matrix(cfg: &ConformConfig) -> Vec<ConformCell> {
    conform_matrix_on(&SweepPool::ambient(), cfg)
}

/// [`conform_matrix`] on an explicit pool. Cells are pure functions of the
/// config, fan out as parallel jobs, and collect in submission order — the
/// rendered table is byte-identical at any worker count.
pub fn conform_matrix_on(pool: &SweepPool, cfg: &ConformConfig) -> Vec<ConformCell> {
    silence_oracle_panics();
    let mut jobs: Vec<Job<'_, ConformCell>> = Vec::new();
    for &platform in &cfg.platforms {
        for &algorithm in &cfg.algorithms {
            jobs.push(Job::parallel(move || run_cell(platform, algorithm, cfg)));
        }
    }
    pool.run(jobs)
}

/// Keeps expected oracle violations (and their teardown) from spraying
/// panic reports over the table: they are caught, classified, and shrunk.
pub(crate) fn silence_oracle_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(armbar_core::oracle::is_oracle_message) {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_core::MemCtx;
    use armbar_simcoh::Addr;
    use armbar_sweep::SweepPool;

    fn quick_cfg() -> ConformConfig {
        ConformConfig {
            algorithms: vec![AlgorithmId::Sense, AlgorithmId::Dissemination],
            threads: 4,
            episodes: 2,
            seeds: 30,
            ..ConformConfig::default()
        }
    }

    #[test]
    fn all_sampled_algorithms_conform() {
        let cells = conform_matrix_on(&SweepPool::new(2), &quick_cfg());
        for c in &cells {
            assert!(c.violations.is_empty(), "{}: {}", c.algorithm.label(), c.detail());
            assert_eq!(c.trials, 30);
        }
    }

    #[test]
    fn exploration_produces_schedule_diversity() {
        let cells = conform_matrix_on(&SweepPool::new(2), &quick_cfg());
        for c in &cells {
            assert!(
                c.distinct_schedules > c.trials as usize / 2,
                "{}: only {} distinct schedules over {} trials",
                c.algorithm.label(),
                c.distinct_schedules,
                c.trials
            );
        }
    }

    #[test]
    fn weak_search_matrix_is_clean_and_deterministic() {
        // The weak-memory search over a sample of the matrix: the shipped
        // acquire/release annotations must survive reordered schedules,
        // and the table must stay byte-identical at any worker count
        // (the weak decision stream is per-trial, not per-worker).
        let cfg = ConformConfig {
            algorithms: vec![AlgorithmId::Sense, AlgorithmId::Dissemination, AlgorithmId::Mcs],
            threads: 4,
            episodes: 2,
            seeds: 30,
            explorer: ExplorerConfig { reorder_prob: 0.8, ..ExplorerConfig::default() }
                .with_reorder_budget(16),
            ..ConformConfig::default()
        };
        let serial = conform_matrix_on(&SweepPool::new(1), &cfg);
        let parallel = conform_matrix_on(&SweepPool::new(4), &cfg);
        for c in &serial {
            assert!(c.violations.is_empty(), "{}: {}", c.algorithm.label(), c.detail());
        }
        let render = |cells: &[ConformCell]| crate::report::render_csv(cells, &cfg);
        assert_eq!(render(&serial), render(&parallel));
    }

    #[test]
    fn weak_search_explores_distinct_schedules() {
        // Reordering decisions feed the schedule fingerprint: the same
        // seeds must reach schedules the SC search cannot.
        let base = quick_cfg();
        let weak = ConformConfig {
            explorer: ExplorerConfig { reorder_prob: 0.8, ..ExplorerConfig::default() }
                .with_reorder_budget(16),
            ..base.clone()
        };
        let sc = conform_matrix_on(&SweepPool::new(2), &base);
        let wk = conform_matrix_on(&SweepPool::new(2), &weak);
        for (s, w) in sc.iter().zip(&wk) {
            assert!(w.violations.is_empty(), "{}: {}", w.algorithm.label(), w.detail());
            assert!(
                s.distinct_schedules > 0 && w.distinct_schedules > 0,
                "both searches must make progress"
            );
        }
    }

    #[test]
    fn matrix_is_identical_at_any_worker_count() {
        let cfg = quick_cfg();
        let serial = conform_matrix_on(&SweepPool::new(1), &cfg);
        let parallel = conform_matrix_on(&SweepPool::new(4), &cfg);
        let render = |cells: &[ConformCell]| crate::report::render_csv(cells, &cfg);
        assert_eq!(render(&serial), render(&parallel));
    }

    /// A "barrier" in which thread 1 deserts: everyone else runs a correct
    /// counter barrier (per-round releases on a monotonically numbered
    /// flag), but thread 1 returns immediately — the early-exit bug the
    /// schedule search must expose. Nothing here can deadlock, so the
    /// violation kind is stable across schedules.
    struct Deserter {
        counter: Addr,
        flag: Addr,
    }

    impl Barrier for Deserter {
        fn wait(&self, ctx: &dyn MemCtx) {
            if ctx.tid() == 1 {
                return; // never waits — the bug under audit
            }
            let n = ctx.nthreads() as u32 - 1;
            let arrival = ctx.fetch_add(self.counter, 1) + 1;
            let round = arrival.div_ceil(n);
            if arrival == round * n {
                ctx.store(self.flag, round); // last of the round releases
            } else {
                ctx.spin_until_ge(self.flag, round);
            }
        }
        fn name(&self) -> &str {
            "DESERTER"
        }
    }

    #[test]
    fn broken_barrier_is_caught_and_replayable() {
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let build = |arena: &mut Arena, _p: usize, t: &Topology| -> Box<dyn Barrier> {
            let line = t.cacheline_bytes();
            Box::new(Deserter {
                counter: arena.alloc_padded_u32(line),
                flag: arena.alloc_padded_u32(line),
            })
        };
        let cfg = ExplorerConfig::default();
        let mut caught = None;
        for i in 0..50u32 {
            let seed = trial_seed(0xBAD, i);
            if let Err((kind, detail)) = run_trial_with(&topo, &build, 4, 2, seed, cfg, 4_000_000) {
                caught = Some((seed, kind, detail));
                break;
            }
        }
        let (seed, kind, detail) = caught.expect("the schedule search must expose the deserter");
        assert!(
            matches!(kind, ViolationKind::EarlyExit | ViolationKind::EpochSkew),
            "{kind}: {detail}"
        );
        // The reproducer replays deterministically with the same verdict.
        let replay = run_trial_with(&topo, &build, 4, 2, seed, cfg, 4_000_000);
        assert_eq!(replay.err().map(|(k, _)| k), Some(kind));
    }

    #[test]
    fn quiescence_check_accepts_balanced_marks() {
        let marks = [
            Mark { tid: 0, label: MARK_ENTER, time_ns: 0.0 },
            Mark { tid: 0, label: MARK_EXIT, time_ns: 1.0 },
            Mark { tid: 0, label: MARK_ENTER, time_ns: 2.0 },
            Mark { tid: 0, label: MARK_EXIT, time_ns: 3.0 },
        ];
        assert!(check_quiescence(&marks, 1, 2).is_ok());
    }

    #[test]
    fn quiescence_check_rejects_imbalance_and_disorder() {
        let missing_exit = [Mark { tid: 0, label: MARK_ENTER, time_ns: 0.0 }];
        assert!(check_quiescence(&missing_exit, 1, 1).is_err());
        let reversed = [
            Mark { tid: 0, label: MARK_EXIT, time_ns: 0.0 },
            Mark { tid: 0, label: MARK_ENTER, time_ns: 1.0 },
        ];
        assert!(check_quiescence(&reversed, 1, 1).is_err());
    }

    #[test]
    fn trial_seeds_are_distinct_and_replayable() {
        let mut seen = HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(trial_seed(0xC0F0, i)));
        }
        assert_eq!(trial_seed(1, 7), trial_seed(1, 7));
    }
}

//! # armbar-conformance — schedule-exploring barrier conformance checking
//!
//! The workspace's correctness tool: drives every barrier algorithm through
//! thousands of seeded, perturbed interleavings of the coherence simulator
//! and checks safety oracles after every episode. Where the chaos harness
//! (`armbar-faults`) asks *"does the barrier fail gracefully when threads
//! misbehave?"*, this crate asks *"is the barrier actually correct on every
//! schedule a sequentially consistent machine could produce?"* — the
//! claims of the paper's Sections II-B and V:
//!
//! * **no early exit** — no thread leaves episode `k` before every
//!   participant has entered it;
//! * **sense/epoch consistency** — episode numbering never skews across
//!   threads (a peer at most one episode ahead is legal);
//! * **no lost wake-up** — every release is observed; a missed one
//!   surfaces as a simulator deadlock and is classified as such;
//! * **quiescence** — every episode's `ENTER`/`EXIT` phase marks balance
//!   and alternate per thread, so no residual work leaks across episodes.
//!
//! The [`phaser`] module extends the search to **dynamic membership**: it
//! drives the phasers through seeded register/deregister/eviction scripts
//! under the same explorer and checks two membership oracles — *no lost
//! member* (every committed member's completion ledger is gapless over its
//! membership interval) and *no phantom arrival* (no activity is ever
//! recorded outside the committed membership).
//!
//! Exploration rides the engine's `SchedulePolicy` hook: an
//! [`ExplorerPolicy`] permutes tie-broken picks, preempts with bounded
//! probability, and injects targeted delays at flag read/write sites. Every
//! trial is a pure function of its seed, so a violation ships with a
//! deterministic reproducer — and a shrinking pass minimizes the
//! perturbation budget and episode count before reporting.
//!
//! ```
//! use armbar_conformance::{conform_matrix, ConformConfig};
//! use armbar_core::AlgorithmId;
//!
//! let cfg = ConformConfig {
//!     algorithms: vec![AlgorithmId::Sense],
//!     seeds: 25,
//!     ..ConformConfig::default()
//! };
//! let cells = conform_matrix(&cfg);
//! assert!(cells.iter().all(|c| c.violations.is_empty()));
//! ```

pub mod checker;
pub mod explorer;
pub mod fence;
mod litmus;
pub mod phaser;
pub mod report;

pub use checker::{
    conform_matrix, conform_matrix_on, ConformCell, ConformConfig, Violation, ViolationKind,
};
pub use explorer::{ExplorerConfig, ExplorerPolicy};
pub use fence::{
    fence_matrix, fence_matrix_on, render_fence_markdown, FenceCell, FenceConfig, FenceLevel,
    LevelResult,
};
pub use phaser::{
    check_membership_ledger, phaser_conform_matrix, phaser_conform_matrix_on, render_phaser_csv,
    render_phaser_json, PhaserConformCell, PhaserConformConfig,
};
pub use report::{render_csv, render_json};

//! Machine-readable simulator performance trajectory: `BENCH_sim.json`.
//!
//! Measures engine throughput (operations per wall-second through the
//! rendezvous scheduler) for a SENSE and a STOUR barrier microbench at
//! P ∈ {16, 64} on the paper's 64-core Phytium preset and at
//! P ∈ {256, 1024} on the hierarchical MemPool presets (exercising the
//! sharded scheduler), plus the wall-clock of a quick-scale regeneration of
//! every experiment suite, and writes the numbers as JSON to the repo root.
//!
//! ```text
//! bench_sim [--out PATH] [--skip-experiments] [--gate-drop-pct N] [--summary PATH]
//! ```
//!
//! `--gate-drop-pct N` turns the run into a perf gate: after writing the
//! JSON, the process exits nonzero if any `engine_ops_per_sec_*` key
//! dropped more than N% against the committed file (wall-clock keys are
//! reported but never gated — they measure the runner, not the engine).
//! `--summary PATH` appends a markdown delta table (GitHub step-summary
//! format) to the given file.
//!
//! If the output file already exists, its `benches` section is treated as
//! the committed baseline: the tool prints the delta of the fresh run
//! against it, and carries the existing `baseline` section forward — keys
//! new to this run are seeded with the fresh value — so the file always
//! records the pre-overhaul reference next to the current numbers. CI runs
//! this as a *blocking* perf gate: the `bench-sim` job fails on a >20% drop
//! of any `engine_ops_per_sec_*` key against the committed file.

use std::sync::Arc;
use std::time::Instant;

use armbar_core::env::Barrier;
use armbar_core::registry::AlgorithmId;
use armbar_experiments::{figs, Scale};
use armbar_simcoh::{Arena, OpKind, SimBuilder};
use armbar_topology::{Platform, Topology};

/// One measured point: engine operations per wall-clock second.
struct EnginePoint {
    key: String,
    ops_per_sec: f64,
}

/// Measurement effort for one engine point. The paper-scale points (P ≤ 64)
/// keep the historical 30×12×6 schedule so the trajectory stays comparable
/// across commits; the kilocore points shrink every knob — one episode at
/// P = 1024 already pushes two orders of magnitude more ops through the
/// engine than a P = 16 episode, so far fewer draws reach the same
/// statistical weight inside the CI budget.
struct Effort {
    /// Episodes per simulation run; sized so one point takes O(100 ms).
    episodes: u32,
    /// Independently seeded runs per point (amortizes thread spawn noise —
    /// and, post-overhaul, exercises episode reuse).
    reps: u64,
    /// Timed attempts per point; the best is reported. The host is a shared
    /// single-core VM whose wall clocks swing ±40% with neighbor load, so
    /// the maximum over a few attempts estimates engine capability far more
    /// stably than any single draw (switch-bound workloads barely benefit:
    /// the context-switch floor is the same in every attempt).
    attempts: u32,
}

impl Effort {
    fn for_threads(p: usize) -> Effort {
        if p <= 64 {
            Effort { episodes: 30, reps: 12, attempts: 6 }
        } else {
            Effort { episodes: 8, reps: 3, attempts: 3 }
        }
    }
}

fn engine_point(platform: Platform, p: usize, id: AlgorithmId) -> EnginePoint {
    let topo = Arc::new(Topology::preset(platform));
    let effort = Effort::for_threads(p);
    let episodes = effort.episodes;
    let one_rep = |rep: u64| -> u64 {
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
        let stats = SimBuilder::new(Arc::clone(&topo), p)
            .seed(0x5EED ^ rep)
            .run(move |ctx| {
                for _ in 0..episodes {
                    ctx.compute_ns(100.0);
                    barrier.wait(ctx);
                }
            })
            .expect("benchmark barrier must complete");
        stats.total_mem_ops() + stats.ops(OpKind::Compute)
    };
    one_rep(u64::from(episodes)); // untimed warm-up (spawns the sim team)
    let mut best = 0.0f64;
    for _ in 0..effort.attempts {
        let mut total_ops = 0u64;
        let t0 = Instant::now();
        for rep in 0..effort.reps {
            total_ops += one_rep(rep);
        }
        let secs = t0.elapsed().as_secs_f64();
        best = best.max(total_ops as f64 / secs);
    }
    EnginePoint { key: format!("{}_p{}", id.label().to_ascii_lowercase(), p), ops_per_sec: best }
}

/// Wall-clock seconds of a quick-scale regeneration of every suite
/// (`all_experiments --quick`, minus the CSV writing).
fn quick_experiments_secs() -> f64 {
    let scale = Scale::quick();
    let t0 = Instant::now();
    let suites = [
        figs::tables_1_2_3::run(&scale),
        figs::fig05::run(&scale),
        figs::fig06::run(&scale),
        figs::fig07::run(&scale),
        figs::fig11::run(&scale),
        figs::fig12::run(&scale),
        figs::fig13::run(&scale),
        figs::table4::run(&scale),
        figs::model_report::run(&scale),
        figs::ablations::run(&scale),
        figs::phase_breakdown::run(&scale),
        figs::hotspot::run(&scale),
        figs::kilocore::run(&scale),
        figs::crossover::run(&scale),
    ];
    let reports: usize = suites.iter().map(Vec::len).sum();
    assert!(reports > 0, "experiment suites produced nothing");
    t0.elapsed().as_secs_f64()
}

/// Minimal flat-JSON number extraction: finds `"key": <number>` anywhere in
/// the document (keys are unique across sections by construction, except
/// that `benches` precedes `baseline` — the first hit is the current run).
fn first_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))?;
    rest[..end].parse().ok()
}

/// Extracts the committed `baseline` section verbatim, if present.
fn baseline_section(json: &str) -> Option<String> {
    let at = json.find("\"baseline\": {")?;
    let open = at + "\"baseline\": ".len();
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Builds the carried-forward `baseline` section. Each key of the fresh run
/// takes its value from the committed baseline when present there; a key
/// that is new in this run (e.g. a freshly added engine point) is seeded
/// with the fresh measurement so future deltas have a reference. (The old
/// behavior copied the committed baseline verbatim, so a key added to
/// `benches` never entered `baseline` at all.)
fn carry_baseline(points: &[EnginePoint], quick_secs: Option<f64>, old: Option<&str>) -> String {
    let carried: Vec<EnginePoint> = points
        .iter()
        .map(|p| {
            let key = format!("engine_ops_per_sec_{}", p.key);
            let ops = old.and_then(|o| first_number(o, &key)).unwrap_or(p.ops_per_sec);
            EnginePoint { key: p.key.clone(), ops_per_sec: ops }
        })
        .collect();
    let old_quick = old.and_then(|o| first_number(o, "all_experiments_quick_secs"));
    let quick = match quick_secs {
        Some(q) => Some(old_quick.unwrap_or(q)),
        None => old_quick,
    };
    render_section(&carried, quick)
}

fn render_section(points: &[EnginePoint], quick_secs: Option<f64>) -> String {
    let mut s = String::from("{\n");
    for p in points {
        s.push_str(&format!("    \"engine_ops_per_sec_{}\": {:.0},\n", p.key, p.ops_per_sec));
    }
    match quick_secs {
        Some(q) => s.push_str(&format!("    \"all_experiments_quick_secs\": {q:.2}\n")),
        None => {
            // Trim the trailing comma of the last engine point.
            let t = s.trim_end_matches(",\n").len();
            s.truncate(t);
            s.push('\n');
        }
    }
    s.push_str("  }");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned());
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_sim.json".to_string());
    let skip_experiments = args.iter().any(|a| a == "--skip-experiments");
    let gate_drop_pct: Option<f64> = flag_value("--gate-drop-pct").map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: bad --gate-drop-pct value {s:?}");
            std::process::exit(2);
        })
    });
    let summary_path = flag_value("--summary");

    let mut points = Vec::new();
    for id in [AlgorithmId::Sense, AlgorithmId::Stour] {
        for p in [16usize, 64] {
            let pt = engine_point(Platform::Phytium2000Plus, p, id);
            eprintln!("engine {:>14}: {:>12.0} ops/s", pt.key, pt.ops_per_sec);
            points.push(pt);
        }
        // Kilocore points: the hierarchical MemPool presets at their full
        // core counts, exercising the sharded scheduler end to end.
        for (platform, p) in [(Platform::MemPool256, 256usize), (Platform::MemPool1024, 1024)] {
            let pt = engine_point(platform, p, id);
            eprintln!("engine {:>14}: {:>12.0} ops/s", pt.key, pt.ops_per_sec);
            points.push(pt);
        }
    }
    // Contender points: the lock-guarded counters are the engine's worst
    // case for RMW traffic (CAS storms and spin wake-ups on one line), so
    // their throughput is tracked at paper scale only.
    for id in [AlgorithmId::ShyCtr, AlgorithmId::ShyProxy] {
        for p in [16usize, 64] {
            let pt = engine_point(Platform::Phytium2000Plus, p, id);
            eprintln!("engine {:>14}: {:>12.0} ops/s", pt.key, pt.ops_per_sec);
            points.push(pt);
        }
    }
    let quick_secs = if skip_experiments {
        None
    } else {
        let q = quick_experiments_secs();
        eprintln!("all_experiments --quick: {q:.2} s");
        Some(q)
    };

    // Delta of this run against the committed `benches` section: engine
    // keys are gateable, the wall-clock key is informational only.
    let previous = std::fs::read_to_string(&out).ok();
    let mut deltas: Vec<(String, f64, f64)> = Vec::new(); // (key, old, new)
    if let Some(prev) = &previous {
        eprintln!("-- delta vs committed {out} --");
        for p in &points {
            let key = format!("engine_ops_per_sec_{}", p.key);
            if let Some(old) = first_number(prev, &key) {
                eprintln!(
                    "{:>28}: {:+.1}% ({:.0} -> {:.0})",
                    p.key,
                    (p.ops_per_sec / old - 1.0) * 100.0,
                    old,
                    p.ops_per_sec
                );
                deltas.push((key, old, p.ops_per_sec));
            }
        }
        if let (Some(q), Some(old)) = (quick_secs, first_number(prev, "all_experiments_quick_secs"))
        {
            eprintln!(
                "{:>28}: {:+.1}% ({:.2} s -> {:.2} s)",
                "quick experiments",
                (q / old - 1.0) * 100.0,
                old,
                q
            );
        }
    }

    if let Some(path) = &summary_path {
        let mut md = String::from(
            "## Simulator perf gate\n\n| key | committed | this run | delta |\n|---|---:|---:|---:|\n",
        );
        for (key, old, new) in &deltas {
            md.push_str(&format!(
                "| `{key}` | {old:.0} | {new:.0} | {:+.1}% |\n",
                (new / old - 1.0) * 100.0
            ));
        }
        if deltas.is_empty() {
            md.push_str("| _no committed baseline found_ | | | |\n");
        }
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(md.as_bytes()))
            .expect("failed to append --summary file");
    }

    let section = render_section(&points, quick_secs);
    let old_baseline = previous.as_deref().and_then(baseline_section);
    let baseline = carry_baseline(&points, quick_secs, old_baseline.as_deref());
    let doc = format!("{{\n  \"benches\": {section},\n  \"baseline\": {baseline}\n}}\n");
    std::fs::write(&out, doc).expect("failed to write BENCH_sim.json");
    eprintln!("wrote {out}");

    if let Some(limit) = gate_drop_pct {
        let failures: Vec<&(String, f64, f64)> =
            deltas.iter().filter(|(_, old, new)| (1.0 - new / old) * 100.0 > limit).collect();
        for (key, old, new) in &failures {
            eprintln!(
                "PERF GATE FAIL {key}: {new:.0} ops/s is {:.1}% below committed {old:.0}",
                (1.0 - new / old) * 100.0
            );
        }
        if !failures.is_empty() {
            std::process::exit(1);
        }
        eprintln!("perf gate: all {} engine keys within {limit}% of committed", deltas.len());
    }
}

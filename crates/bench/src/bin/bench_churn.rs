//! Machine-readable phaser churn trajectory: `BENCH_churn.json`.
//!
//! Measures wall-clock episode throughput (simulated episodes per second
//! through the rendezvous scheduler) of both phasers at P = 64 on the
//! paper's Kunpeng preset, in two regimes: a steady team and a 10%-churn
//! team (one slot flaps — orderly leave, one epoch out, rejoin — every ten
//! epochs). The workload is byte-for-byte the churn experiment's worker
//! (`armbar_experiments::figs::churn::churn_run_ns`), so the bench prices
//! exactly what the `churn` CSV sweep prices, just in wall seconds.
//!
//! ```text
//! bench_churn [--out PATH] [--summary PATH]
//! ```
//!
//! Unlike `bench_sim`, this file is *informational* — CI publishes it in
//! the non-blocking bench summary and never gates on it: churn throughput
//! tracks boundary-commit cost, which the blocking `engine_ops_per_sec_*`
//! gate already covers upstream. If the output file already exists, its
//! `baseline` section is carried forward (new keys seeded from the fresh
//! run) so the pre-phaser reference stays next to the current numbers.

use std::sync::Arc;
use std::time::Instant;

use armbar_core::registry::AlgorithmId;
use armbar_experiments::figs::churn::churn_run_ns;
use armbar_topology::{Platform, Topology};

/// One measured point: simulated episodes completed per wall-second.
struct ChurnPoint {
    key: String,
    episodes_per_sec: f64,
}

/// Episodes per run: long enough for a period-10 flap to complete several
/// full cycles, short enough that one attempt stays O(100 ms) at P = 64.
const EPISODES: u32 = 40;
/// Independently seeded runs per timed attempt.
const REPS: u64 = 4;
/// Timed attempts; best is reported (shared-VM wall clocks are noisy, the
/// maximum over attempts estimates capability — same policy as bench_sim).
const ATTEMPTS: u32 = 5;

fn churn_point(id: AlgorithmId, p: usize, period: Option<u32>) -> ChurnPoint {
    let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
    let one_rep = |rep: u64| churn_run_ns(&topo, p, id, period, EPISODES, 0x5EED ^ rep);
    one_rep(u64::from(EPISODES)); // untimed warm-up (spawns the sim team)
    let mut best = 0.0f64;
    for _ in 0..ATTEMPTS {
        let t0 = Instant::now();
        for rep in 0..REPS {
            one_rep(rep);
        }
        let secs = t0.elapsed().as_secs_f64();
        best = best.max((REPS * u64::from(EPISODES)) as f64 / secs);
    }
    let regime = match period {
        None => "steady".to_string(),
        Some(per) => format!("churn{}", 100 / per),
    };
    ChurnPoint {
        key: format!("{}_p{}_{}", id.label().to_ascii_lowercase(), p, regime),
        episodes_per_sec: best,
    }
}

/// Minimal flat-JSON number extraction: finds `"key": <number>` anywhere
/// (first hit wins — `benches` precedes `baseline`).
fn first_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))?;
    rest[..end].parse().ok()
}

/// Extracts the committed `baseline` section verbatim, if present.
fn baseline_section(json: &str) -> Option<String> {
    let at = json.find("\"baseline\": {")?;
    let open = at + "\"baseline\": ".len();
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn render_section(points: &[ChurnPoint]) -> String {
    let mut s = String::from("{\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"episodes_per_sec_{}\": {:.0}{sep}\n",
            p.key, p.episodes_per_sec
        ));
    }
    s.push_str("  }");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned());
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_churn.json".to_string());
    let summary_path = flag_value("--summary");

    let mut points = Vec::new();
    for id in AlgorithmId::PHASERS {
        for period in [None, Some(10u32)] {
            let pt = churn_point(id, 64, period);
            eprintln!("churn {:>22}: {:>10.0} episodes/s", pt.key, pt.episodes_per_sec);
            points.push(pt);
        }
    }

    // Delta of this run against the committed `benches` section
    // (informational only — there is no gate flag on purpose).
    let previous = std::fs::read_to_string(&out).ok();
    let mut deltas: Vec<(String, f64, f64)> = Vec::new(); // (key, old, new)
    if let Some(prev) = &previous {
        eprintln!("-- delta vs committed {out} --");
        for p in &points {
            let key = format!("episodes_per_sec_{}", p.key);
            if let Some(old) = first_number(prev, &key) {
                eprintln!(
                    "{:>32}: {:+.1}% ({:.0} -> {:.0})",
                    p.key,
                    (p.episodes_per_sec / old - 1.0) * 100.0,
                    old,
                    p.episodes_per_sec
                );
                deltas.push((key, old, p.episodes_per_sec));
            }
        }
    }

    if let Some(path) = &summary_path {
        let mut md = String::from(
            "## Phaser churn bench (non-blocking)\n\n| key | committed | this run | delta |\n|---|---:|---:|---:|\n",
        );
        for (key, old, new) in &deltas {
            md.push_str(&format!(
                "| `{key}` | {old:.0} | {new:.0} | {:+.1}% |\n",
                (new / old - 1.0) * 100.0
            ));
        }
        if deltas.is_empty() {
            for p in &points {
                md.push_str(&format!(
                    "| `episodes_per_sec_{}` | _none_ | {:.0} | |\n",
                    p.key, p.episodes_per_sec
                ));
            }
        }
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(md.as_bytes()))
            .expect("failed to append --summary file");
    }

    // Carry the committed baseline forward; keys new to this run are
    // seeded with the fresh measurement so future deltas have a reference.
    let old_baseline = previous.as_deref().and_then(baseline_section);
    let carried: Vec<ChurnPoint> = points
        .iter()
        .map(|p| {
            let key = format!("episodes_per_sec_{}", p.key);
            let eps = old_baseline
                .as_deref()
                .and_then(|o| first_number(o, &key))
                .unwrap_or(p.episodes_per_sec);
            ChurnPoint { key: p.key.clone(), episodes_per_sec: eps }
        })
        .collect();
    let doc = format!(
        "{{\n  \"benches\": {},\n  \"baseline\": {}\n}}\n",
        render_section(&points),
        render_section(&carried)
    );
    std::fs::write(&out, doc).expect("failed to write BENCH_churn.json");
    eprintln!("wrote {out}");
}

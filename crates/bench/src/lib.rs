//! # armbar-bench — Criterion benchmark harnesses
//!
//! Four benchmark suites:
//!
//! * `algorithms` — simulated per-episode overhead of every algorithm at
//!   the paper's anchor points (Figures 5–7): the benchmark measures the
//!   wall-clock of a deterministic simulation whose *virtual* time is the
//!   paper's metric; each run also prints the virtual overhead so the
//!   criterion report doubles as a figure regeneration.
//! * `optimizations` — the Figure 11/12/13 configuration space (padding ×
//!   fan-in × wake-up).
//! * `host_backend` — real-thread barrier episodes on the host (small
//!   thread counts; this is the library-as-a-product benchmark).
//! * `simulator` — engine throughput (ops/second) so regressions in the
//!   DES core are caught independently of the modeled numbers.
//!
//! Helpers shared by the suites live here.

use std::sync::Arc;

use armbar_core::prelude::*;
use armbar_epcc::{sim_overhead_of, OverheadConfig};
use armbar_simcoh::Arena;
use armbar_topology::{Platform, Topology};

/// Builds a barrier + topology pair ready for simulation runs.
pub fn build(platform: Platform, p: usize, id: AlgorithmId) -> (Arc<Topology>, Arc<dyn Barrier>) {
    let topo = Arc::new(Topology::preset(platform));
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
    (topo, barrier)
}

/// One simulated overhead measurement with bench-friendly defaults
/// (fewer episodes than the experiment pipelines — criterion already
/// repeats).
pub fn sim_once(topo: &Arc<Topology>, p: usize, barrier: Arc<dyn Barrier>) -> f64 {
    sim_overhead_of(
        topo,
        p,
        barrier,
        OverheadConfig { warmup: 2, episodes: 10, delay_ns: 100.0, seed: 7 },
    )
    .expect("simulation failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_run_every_algorithm() {
        for id in [AlgorithmId::Sense, AlgorithmId::Optimized] {
            let (topo, b) = build(Platform::ThunderX2, 16, id);
            assert!(sim_once(&topo, 16, b) > 0.0);
        }
    }
}

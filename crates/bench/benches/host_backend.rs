//! Host-backend benchmark: real-thread barrier episodes (Table IV's
//! algorithms as a usable library). Thread counts stay small — the bench
//! host may have very few cores, and barrier benchmarking oversubscribed
//! measures the OS scheduler, not the algorithm.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use armbar_core::prelude::*;
use armbar_simcoh::Arena;
use armbar_topology::{Platform, Topology};

fn episodes(p: usize, id: AlgorithmId, iters: u64) {
    let topo = Topology::preset(Platform::Phytium2000Plus);
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
    let mem = HostMem::new(&arena);
    std::thread::scope(|s| {
        for tid in 0..p {
            let mem = Arc::clone(&mem);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let ctx = mem.ctx(tid, p);
                for _ in 0..iters {
                    barrier.wait(&ctx);
                }
            });
        }
    });
}

fn bench_host_barriers(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let p = threads.clamp(1, 4);
    let mut group = c.benchmark_group(format!("host_barrier_p{p}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for id in [
        AlgorithmId::Sense,
        AlgorithmId::Dissemination,
        AlgorithmId::Mcs,
        AlgorithmId::Tournament,
        AlgorithmId::Optimized,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{id}")), &(), |b, _| {
            b.iter(|| episodes(p, id, 200));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_host_barriers);
criterion_main!(benches);

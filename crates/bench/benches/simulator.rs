//! Simulator-engine throughput benchmark: operations per second through
//! the rendezvous scheduler. Guards the DES core against performance
//! regressions independently of the modeled results.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use armbar_simcoh::{Arena, SimBuilder};
use armbar_topology::{Platform, Topology};

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_engine");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, nthreads, ops_per_thread) in
        [("2x500", 2usize, 500u32), ("16x200", 16, 200), ("64x50", 64, 50)]
    {
        let total_ops = nthreads as u64 * ops_per_thread as u64;
        group.throughput(Throughput::Elements(total_ops));
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| {
                let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
                let mut arena = Arena::new();
                let slots = arena.alloc_padded_u32_array(nthreads, 128);
                SimBuilder::new(topo, nthreads)
                    .run(move |ctx| {
                        let mine = slots + 128 * ctx.tid() as u32;
                        for i in 0..ops_per_thread {
                            ctx.store(mine, i);
                            ctx.load(mine);
                        }
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);

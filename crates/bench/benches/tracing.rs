//! Observability-layer overhead benchmark: the per-episode trace harness
//! (phase marks + counter snapshots) versus the plain overhead harness on
//! the same barrier. Guards the zero-cost-when-disabled claim: hooks are
//! free on the host backend and cheap (marks only) on the simulator.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use armbar_core::prelude::*;
use armbar_epcc::{sim_overhead_ns, trace_episodes, OverheadConfig};
use armbar_simcoh::Arena;
use armbar_topology::{Platform, Topology};

const EPISODES: u32 = 8;

fn cfg() -> OverheadConfig {
    OverheadConfig { episodes: EPISODES, ..OverheadConfig::default() }
}

fn bench_trace_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_harness");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for p in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("untraced", p), &p, |b, &p| {
            b.iter(|| {
                let topo = Arc::new(Topology::preset(Platform::Phytium2000Plus));
                sim_overhead_ns(&topo, p, AlgorithmId::Optimized, cfg()).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("traced", p), &p, |b, &p| {
            b.iter(|| {
                let topo = Arc::new(Topology::preset(Platform::Phytium2000Plus));
                let mut arena = Arena::new();
                let barrier: Arc<dyn Barrier> =
                    Arc::from(AlgorithmId::Optimized.build(&mut arena, p, &topo));
                trace_episodes(&topo, p, barrier, cfg()).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_harness);
criterion_main!(benches);

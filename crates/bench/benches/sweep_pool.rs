//! Sweep-engine benchmark: the same quick-scale curve through a serial
//! pool and a parallel one.
//!
//! The scientific output is identical by construction (the determinism
//! tests pin that); what criterion measures here is the wall-clock payoff
//! of fanning the per-point simulations out across workers. On a
//! single-core runner the two groups coincide — the speedup column is
//! only meaningful on multi-core hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use armbar_core::prelude::*;
use armbar_experiments::runner::{algo_curve_on, topo};
use armbar_experiments::Scale;
use armbar_sweep::SweepPool;
use armbar_topology::Platform;

fn bench_sweep_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_pool_quick_curve");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    let t = topo(Platform::Kunpeng920);
    let scale = Scale::quick();
    let workers = armbar_sweep::available_parallelism();
    println!("[sweep] {workers} worker(s) available");
    for (label, pool) in [("serial", SweepPool::new(1)), ("parallel", SweepPool::new(workers))] {
        group.bench_with_input(BenchmarkId::new(label, pool.workers()), &(), |b, _| {
            b.iter(|| algo_curve_on(&pool, &t, AlgorithmId::Optimized, &scale));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_pool);
criterion_main!(benches);

//! Figure 5/6/7 benchmark: every algorithm at the paper's anchor points.
//!
//! Criterion measures the wall-clock of the deterministic simulation; the
//! quantity of scientific interest (the simulated barrier overhead in ns)
//! is printed once per configuration alongside.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use armbar_bench::{build, sim_once};
use armbar_core::prelude::*;
use armbar_topology::Platform;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_algorithms_at_64");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for platform in Platform::ARM {
        for id in AlgorithmId::SEVEN {
            let (topo, barrier) = build(platform, 64, id);
            let overhead = sim_once(&topo, 64, Arc::clone(&barrier));
            println!("[sim] {platform} / {id} @64: {overhead:.0} ns per episode");
            group.bench_with_input(
                BenchmarkId::new(format!("{platform}"), format!("{id}")),
                &(),
                |b, _| {
                    b.iter(|| sim_once(&topo, 64, Arc::clone(&barrier)));
                },
            );
        }
    }
    group.finish();
}

fn bench_gcc_vs_llvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_gcc_vs_llvm_at_32");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for platform in Platform::ALL {
        for id in [AlgorithmId::Sense, AlgorithmId::LlvmHyper] {
            let (topo, barrier) = build(platform, 32, id);
            let overhead = sim_once(&topo, 32, Arc::clone(&barrier));
            println!("[sim] {platform} / {id} @32: {overhead:.0} ns per episode");
            group.bench_with_input(
                BenchmarkId::new(format!("{platform}"), format!("{id}")),
                &(),
                |b, _| {
                    b.iter(|| sim_once(&topo, 32, Arc::clone(&barrier)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gcc_vs_llvm, bench_algorithms);
criterion_main!(benches);

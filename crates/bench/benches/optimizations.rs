//! Figure 11/12/13 benchmark: the optimization design space — flag
//! padding, fixed fan-in, and wake-up policy.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use armbar_bench::sim_once;
use armbar_core::prelude::*;
use armbar_simcoh::Arena;
use armbar_topology::{Platform, Topology};

fn fway(topo: &Arc<Topology>, p: usize, config: FwayConfig) -> Arc<dyn Barrier> {
    let mut arena = Arena::new();
    Arc::new(FwayBarrier::with_config(&mut arena, p, topo, config))
}

fn bench_fig11_padding(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_arrival_variants_at_64");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for platform in Platform::ARM {
        let topo = Arc::new(Topology::preset(platform));
        for (label, config) in [
            ("static_fway", FwayConfig::stour()),
            ("padding_fway", FwayConfig { padded_flags: true, ..FwayConfig::stour() }),
            (
                "padding_4way",
                FwayConfig { fanin: Fanin::Fixed(4), padded_flags: true, ..FwayConfig::stour() },
            ),
        ] {
            let barrier = fway(&topo, 64, config);
            let overhead = sim_once(&topo, 64, Arc::clone(&barrier));
            println!("[sim] {platform} / {label} @64: {overhead:.0} ns per episode");
            group.bench_with_input(BenchmarkId::new(format!("{platform}"), label), &(), |b, _| {
                b.iter(|| sim_once(&topo, 64, Arc::clone(&barrier)))
            });
        }
    }
    group.finish();
}

fn bench_fig12_wakeups(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_wakeup_methods_at_64");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for platform in Platform::ARM {
        let topo = Arc::new(Topology::preset(platform));
        for wakeup in [WakeupKind::Global, WakeupKind::BinaryTree, WakeupKind::NumaTree] {
            let config =
                FwayConfig { fanin: Fanin::Fixed(4), padded_flags: true, dynamic: false, wakeup };
            let barrier = fway(&topo, 64, config);
            let overhead = sim_once(&topo, 64, Arc::clone(&barrier));
            println!("[sim] {platform} / {} @64: {overhead:.0} ns per episode", wakeup.label());
            group.bench_with_input(
                BenchmarkId::new(format!("{platform}"), wakeup.label()),
                &(),
                |b, _| b.iter(|| sim_once(&topo, 64, Arc::clone(&barrier))),
            );
        }
    }
    group.finish();
}

fn bench_fig13_fanin_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_fanin_sweep_at_64");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for platform in Platform::ARM {
        let topo = Arc::new(Topology::preset(platform));
        for f in [2usize, 4, 8, 16, 32, 64] {
            let config =
                FwayConfig { fanin: Fanin::Fixed(f), padded_flags: true, ..FwayConfig::stour() };
            let barrier = fway(&topo, 64, config);
            let overhead = sim_once(&topo, 64, Arc::clone(&barrier));
            println!("[sim] {platform} / fan-in {f} @64: {overhead:.0} ns per episode");
            group.bench_with_input(BenchmarkId::new(format!("{platform}"), f), &(), |b, _| {
                b.iter(|| sim_once(&topo, 64, Arc::clone(&barrier)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11_padding, bench_fig12_wakeups, bench_fig13_fanin_sweep);
criterion_main!(benches);

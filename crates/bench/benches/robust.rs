//! Hardening overhead: `RobustBarrier`'s bounded polling + poison checks
//! versus the raw algorithm on the host backend. The wrapper re-implements
//! spin waits as polling loops with a deadline check every 64 polls, so
//! healthy-path episodes should cost only a few percent extra — this bench
//! keeps that claim honest.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use armbar_core::prelude::*;
use armbar_core::HostMem;
use armbar_simcoh::Arena;
use armbar_topology::{Platform, Topology};

fn raw_episodes(p: usize, id: AlgorithmId, iters: u64) {
    let topo = Topology::preset(Platform::Kunpeng920);
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
    let mem = HostMem::new(&arena);
    std::thread::scope(|s| {
        for tid in 0..p {
            let mem = Arc::clone(&mem);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let ctx = mem.ctx(tid, p);
                for _ in 0..iters {
                    barrier.wait(&ctx);
                }
            });
        }
    });
}

fn robust_episodes(p: usize, id: AlgorithmId, iters: u64) {
    let topo = Topology::preset(Platform::Kunpeng920);
    let mut arena = Arena::new();
    let inner = id.build(&mut arena, p, &topo);
    let robust = Arc::new(RobustBarrier::new(
        &mut arena,
        topo.cacheline_bytes(),
        inner,
        RobustConfig { deadline: Duration::from_secs(30), ..RobustConfig::default() },
    ));
    let mem = HostMem::new(&arena);
    std::thread::scope(|s| {
        for tid in 0..p {
            let mem = Arc::clone(&mem);
            let robust = Arc::clone(&robust);
            s.spawn(move || {
                let ctx = mem.ctx(tid, p);
                for _ in 0..iters {
                    robust.wait(&ctx).expect("healthy episode");
                }
            });
        }
    });
}

fn bench_hardening_overhead(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let p = threads.clamp(1, 4);
    let mut group = c.benchmark_group(format!("robust_overhead_p{p}"));
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    for id in [AlgorithmId::Sense, AlgorithmId::Dissemination, AlgorithmId::Optimized] {
        group.bench_with_input(BenchmarkId::new("raw", format!("{id}")), &(), |b, _| {
            b.iter(|| raw_episodes(p, id, 200));
        });
        group.bench_with_input(BenchmarkId::new("robust", format!("{id}")), &(), |b, _| {
            b.iter(|| robust_episodes(p, id, 200));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hardening_overhead);
criterion_main!(benches);

//! Quickstart: the optimized barrier in a handful of lines, on both
//! backends.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use armbar::core::prelude::*;
use armbar::epcc::{sim_overhead_ns, OverheadConfig};
use armbar::simcoh::Arena;
use armbar::{Platform, Topology};

fn main() {
    // ── 1. A real barrier for real threads ────────────────────────────
    let threads = 4;
    let topo = Topology::preset(Platform::Phytium2000Plus);
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> =
        Arc::from(AlgorithmId::Optimized.build(&mut arena, threads, &topo));
    let mem = HostMem::new(&arena);

    let mut totals = vec![0u64; threads];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let mem = Arc::clone(&mem);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let ctx = mem.ctx(tid, threads);
                    let mut local = 0u64;
                    for phase in 0..100u64 {
                        local += phase * (tid as u64 + 1); // "work"
                        barrier.wait(&ctx); // nobody starts phase k+1 early
                    }
                    local
                })
            })
            .collect();
        for (tid, h) in handles.into_iter().enumerate() {
            totals[tid] = h.join().unwrap();
        }
    });
    println!("host backend: 100 barrier-separated phases on {threads} threads -> {totals:?}");

    // ── 2. The same algorithm, costed on a modeled 64-core ARMv8 part ──
    for platform in Platform::ARM {
        let t = Arc::new(Topology::preset(platform));
        let optimized =
            sim_overhead_ns(&t, 64, AlgorithmId::Optimized, OverheadConfig::default()).unwrap();
        let gcc = sim_overhead_ns(&t, 64, AlgorithmId::Sense, OverheadConfig::default()).unwrap();
        println!(
            "simulated {:16} @64 threads: optimized {:7.2} us | GCC-style {:7.2} us ({:.1}x)",
            t.name(),
            optimized / 1000.0,
            gcc / 1000.0,
            gcc / optimized
        );
    }
}

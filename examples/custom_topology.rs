//! Define your own machine model and evaluate the barrier design space on
//! it — here, a hypothetical 4-socket ThunderX2-style part ("TX2x4") that
//! does not exist in the paper.
//!
//! This is the intended workflow for a new chip: measure (or estimate)
//! the latency layers, describe the cluster hierarchy, then let the
//! analytical model and the simulator pick the barrier configuration.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use std::sync::Arc;

use armbar::core::prelude::*;
use armbar::epcc::{sim_overhead_of, OverheadConfig};
use armbar::model::{optimal_fanin_int, recommend_wakeup, WakeupChoice};
use armbar::simcoh::Arena;
use armbar::TopologyBuilder;

fn main() {
    // A fictional 4-socket, 96-core machine: 24 cores per socket in
    // clusters of 8, with a slow inter-socket mesh.
    let topo = Arc::new(
        TopologyBuilder::new("TX2x4 (hypothetical)", 96)
            .cacheline_bytes(64)
            .epsilon_ns(1.2)
            .layer("within a cluster", 18.0, 0.8)
            .layer("within a socket", 32.0, 0.8)
            .layer("across sockets", 180.0, 0.9)
            .hierarchy(&[8, 24])
            .coherence(18.0, 9.0, 0.03)
            .noc_ns(3.0)
            .build(),
    );
    println!("machine: {} ({} cores, N_c = {})", topo.name(), topo.num_cores(), topo.n_c());

    // 1. Ask the analytical model for a configuration.
    let f = optimal_fanin_int(&topo, topo.num_cores());
    let wake = match recommend_wakeup(&topo, topo.num_cores()) {
        WakeupChoice::Global => WakeupKind::Global,
        WakeupChoice::Tree => WakeupKind::NumaTree,
    };
    println!("model recommends: fan-in {f}, {} wake-up", wake.label());

    // 2. Validate by simulating the neighbourhood of that configuration.
    let p = topo.num_cores();
    println!("\nsimulated overhead at {p} threads (us):");
    for (label, config) in [
        ("original STOUR".to_string(), FwayConfig::stour()),
        (
            format!("padded {f}-way + global"),
            FwayConfig {
                fanin: Fanin::Fixed(f),
                padded_flags: true,
                dynamic: false,
                wakeup: WakeupKind::Global,
            },
        ),
        (
            format!("padded {f}-way + binary tree"),
            FwayConfig {
                fanin: Fanin::Fixed(f),
                padded_flags: true,
                dynamic: false,
                wakeup: WakeupKind::BinaryTree,
            },
        ),
        (
            format!("padded {f}-way + NUMA tree"),
            FwayConfig {
                fanin: Fanin::Fixed(f),
                padded_flags: true,
                dynamic: false,
                wakeup: WakeupKind::NumaTree,
            },
        ),
    ] {
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> =
            Arc::new(FwayBarrier::with_config(&mut arena, p, &topo, config));
        let ns = sim_overhead_of(&topo, p, barrier, OverheadConfig::default()).unwrap();
        println!("  {label:32} {:8.2}", ns / 1000.0);
    }
}

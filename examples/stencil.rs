//! A 1-D Jacobi heat-diffusion stencil — the canonical bulk-synchronous
//! workload the paper's introduction motivates: a parallel loop whose
//! every iteration ends in an (implicit, in OpenMP) barrier.
//!
//! Each thread owns a slab of the rod; after updating its slab from the
//! previous time step it must wait for its neighbours before the next
//! step. We run the same computation with two barrier algorithms and
//! verify they produce bit-identical physics, then report timing.
//!
//! ```text
//! cargo run --release --example stencil
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use armbar::core::prelude::*;
use armbar::simcoh::Arena;
use armbar::{Platform, Topology};

const CELLS: usize = 4096;
const STEPS: usize = 400;
const THREADS: usize = 4;

/// One double-buffered Jacobi run using `algorithm` for the step barrier.
/// Returns the final temperature field and the wall time.
fn run(algorithm: AlgorithmId) -> (Vec<f64>, std::time::Duration) {
    let topo = Topology::preset(Platform::Kunpeng920);
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(algorithm.build(&mut arena, THREADS, &topo));
    let mem = HostMem::new(&arena);

    // Two buffers of atomics so threads can exchange halo cells safely;
    // the barrier guarantees step k's writes are complete before anyone
    // reads them in step k+1.
    let bufs: [Vec<AtomicU64>; 2] = [
        (0..CELLS).map(|i| AtomicU64::new(initial(i).to_bits())).collect(),
        (0..CELLS).map(|_| AtomicU64::new(0)).collect(),
    ];
    let bufs = Arc::new(bufs);

    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let mem = Arc::clone(&mem);
            let barrier = Arc::clone(&barrier);
            let bufs = Arc::clone(&bufs);
            s.spawn(move || {
                let ctx = mem.ctx(tid, THREADS);
                let chunk = CELLS / THREADS;
                let (lo, hi) = (tid * chunk, (tid + 1) * chunk);
                for step in 0..STEPS {
                    let (src, dst) = (&bufs[step % 2], &bufs[(step + 1) % 2]);
                    for i in lo..hi {
                        let left = f64::from_bits(src[i.saturating_sub(1)].load(Ordering::Relaxed));
                        let mid = f64::from_bits(src[i].load(Ordering::Relaxed));
                        let right =
                            f64::from_bits(src[(i + 1).min(CELLS - 1)].load(Ordering::Relaxed));
                        dst[i].store(
                            (0.25 * left + 0.5 * mid + 0.25 * right).to_bits(),
                            Ordering::Relaxed,
                        );
                    }
                    // The barrier's Acquire/Release discipline publishes the
                    // relaxed stores above to every peer.
                    barrier.wait(&ctx);
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let final_buf = &bufs[STEPS % 2];
    (final_buf.iter().map(|c| f64::from_bits(c.load(Ordering::Relaxed))).collect(), elapsed)
}

/// A hot spike in the middle of a cold rod.
fn initial(i: usize) -> f64 {
    if (CELLS / 2 - 8..CELLS / 2 + 8).contains(&i) {
        100.0
    } else {
        0.0
    }
}

fn main() {
    let (reference, t_sense) = run(AlgorithmId::Sense);
    let (optimized, t_opt) = run(AlgorithmId::Optimized);

    assert_eq!(
        reference.iter().zip(&optimized).filter(|(a, b)| a.to_bits() != b.to_bits()).count(),
        0,
        "barrier choice must not change the physics"
    );
    let total: f64 = optimized.iter().sum();
    println!(
        "Jacobi {CELLS} cells x {STEPS} steps on {THREADS} threads: \
         heat conserved to {total:.3} (expected ~{:.3})",
        16.0 * 100.0
    );
    println!("  with SENSE barrier:     {t_sense:?}");
    println!("  with optimized barrier: {t_opt:?}");
    println!("identical results from both barriers — synchronization is sound.");
}

//! Sweep every barrier algorithm on a chosen (simulated) platform and
//! print an overhead-vs-threads table — Figure 7 for one machine, as a
//! library call you can point at any topology.
//!
//! ```text
//! cargo run --release --example compare_algorithms            # ThunderX2
//! cargo run --release --example compare_algorithms kunpeng920
//! cargo run --release --example compare_algorithms "phytium 2000+"
//! ```

use std::sync::Arc;

use armbar::core::prelude::*;
use armbar::epcc::{sim_overhead_ns, OverheadConfig};
use armbar::{Platform, Topology};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "thunderx2".into());
    let platform = Platform::ALL
        .into_iter()
        .find(|p| p.label().to_ascii_lowercase().contains(&wanted.to_ascii_lowercase()))
        .unwrap_or_else(|| {
            eprintln!("unknown platform {wanted:?}; try one of:");
            for p in Platform::ALL {
                eprintln!("  {p}");
            }
            std::process::exit(1);
        });
    let topo = Arc::new(Topology::preset(platform));
    println!(
        "barrier overhead (us/episode) on simulated {} ({} cores, N_c = {})",
        topo.name(),
        topo.num_cores(),
        topo.n_c()
    );

    let algorithms: Vec<AlgorithmId> = AlgorithmId::SEVEN
        .into_iter()
        .chain([AlgorithmId::LlvmHyper, AlgorithmId::Optimized])
        .collect();

    print!("{:>8}", "threads");
    for id in &algorithms {
        print!("{:>11}", id.label());
    }
    println!();
    for p in [2usize, 4, 8, 16, 32, 64] {
        if p > topo.num_cores() {
            continue;
        }
        print!("{p:>8}");
        for &id in &algorithms {
            let ns = sim_overhead_ns(&topo, p, id, OverheadConfig::default()).unwrap();
            print!("{:>11.2}", ns / 1000.0);
        }
        println!();
    }
    println!("\n(OPT is this library's optimized barrier: padded flags, fan-in 4,");
    println!(" platform-selected wake-up tree.)");
}

//! A software pipeline with barrier-separated stages: every worker applies
//! stage `s` to its stripe of a double-buffered array, where each output
//! element mixes in a *partner* element from another thread's stripe.
//! The barrier between stages is what makes it legal to read partners:
//! it guarantees every stripe of stage `s` is complete (and published)
//! before any thread starts stage `s+1`.
//!
//! A lost or duplicated wake-up would let a thread read a stale partner
//! and corrupt the checksum, so this doubles as an end-to-end soundness
//! demo of the barrier under a non-trivial data-flow.
//!
//! ```text
//! cargo run --release --example pipeline_stages
//! ```

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use armbar::core::prelude::*;
use armbar::simcoh::Arena;
use armbar::{Platform, Topology};

const THREADS: usize = 4;
const ITEMS: usize = 1 << 12;
const STAGES: usize = 6;

/// The stage-`s` update: mix element `i` of `src` with its shuffled
/// partner.
fn update(src: &[AtomicU32], i: usize, stage: u32) -> u32 {
    let partner = (i.wrapping_mul(2654435761) + stage as usize) % ITEMS;
    let other = src[partner].load(Ordering::Relaxed);
    let mine = src[i].load(Ordering::Relaxed);
    mine.rotate_left(stage + 1) ^ other.wrapping_mul(2246822519)
}

fn checksum(data: &[AtomicU32]) -> u32 {
    data.iter().fold(0u32, |acc, c| acc.wrapping_mul(31).wrapping_add(c.load(Ordering::Relaxed)))
}

fn buffers() -> [Vec<AtomicU32>; 2] {
    [
        (0..ITEMS).map(|i| AtomicU32::new(i as u32)).collect(),
        (0..ITEMS).map(|_| AtomicU32::new(0)).collect(),
    ]
}

fn main() {
    let topo = Topology::preset(Platform::ThunderX2);
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> =
        Arc::from(AlgorithmId::Optimized.build(&mut arena, THREADS, &topo));
    let mem = HostMem::new(&arena);

    let bufs = Arc::new(buffers());
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let mem = Arc::clone(&mem);
            let barrier = Arc::clone(&barrier);
            let bufs = Arc::clone(&bufs);
            s.spawn(move || {
                let ctx = mem.ctx(tid, THREADS);
                let chunk = ITEMS / THREADS;
                let (lo, hi) = (tid * chunk, (tid + 1) * chunk);
                for stage in 0..STAGES as u32 {
                    let (src, dst) = (&bufs[stage as usize % 2], &bufs[(stage as usize + 1) % 2]);
                    for (i, out) in dst.iter().enumerate().take(hi).skip(lo) {
                        out.store(update(src, i, stage), Ordering::Relaxed);
                    }
                    // Publish this stripe and wait for every partner
                    // stripe before the next stage reads across stripes.
                    barrier.wait(&ctx);
                }
            });
        }
    });
    let parallel = checksum(&bufs[STAGES % 2]);

    // Sequential reference: same double-buffered schedule, one thread.
    let seq = buffers();
    for stage in 0..STAGES as u32 {
        let (src, dst) = (&seq[stage as usize % 2], &seq[(stage as usize + 1) % 2]);
        for (i, out) in dst.iter().enumerate() {
            out.store(update(src, i, stage), Ordering::Relaxed);
        }
    }
    let reference = checksum(&seq[STAGES % 2]);

    println!("{STAGES}-stage pipeline over {ITEMS} items on {THREADS} threads");
    println!("parallel checksum:  {parallel:#010x}");
    println!("reference checksum: {reference:#010x}");
    assert_eq!(parallel, reference, "stage isolation violated");
    println!("matches the sequential reference — stage isolation holds.");
}

//! Cross-crate integration: every barrier algorithm upholds the episode
//! invariant on both backends — the simulator (any platform, full width)
//! and real host threads.
//!
//! The invariant: when `wait()` for episode `k` returns anywhere, every
//! participant has entered episode `k`. Each thread publishes its episode
//! number before the barrier and validates all peers after it.

use std::sync::Arc;

use armbar::core::prelude::*;
use armbar::simcoh::{arena::padded_elem, Arena, SimBuilder};
use armbar::{Platform, Topology};

fn run_episodes(
    barrier: &dyn Barrier,
    ctx: &dyn MemCtx,
    progress: u32,
    stride: usize,
    episodes: u32,
) {
    let p = ctx.nthreads();
    let me = ctx.tid();
    for e in 1..=episodes {
        ctx.store(padded_elem(progress, me, stride), e);
        barrier.wait(ctx);
        for peer in 0..p {
            let seen = ctx.load(padded_elem(progress, peer, stride));
            assert!(seen >= e, "t{me} passed episode {e} but t{peer} was at {seen}");
        }
    }
}

#[test]
fn all_algorithms_all_platforms_simulated() {
    for platform in Platform::ARM {
        for id in AlgorithmId::ALL {
            for p in [1usize, 2, 7, 33, 64] {
                let topo = Arc::new(Topology::preset(platform));
                let mut arena = Arena::new();
                let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
                let line = topo.cacheline_bytes();
                let progress = arena.alloc_padded_u32_array(p, line);
                SimBuilder::new(topo, p)
                    .run(move |ctx| run_episodes(&*barrier, ctx, progress, line, 3))
                    .unwrap_or_else(|e| panic!("{id} p={p} on {platform}: {e}"));
            }
        }
    }
}

#[test]
fn all_algorithms_on_host_threads() {
    let topo = Topology::preset(Platform::Kunpeng920);
    for id in AlgorithmId::ALL {
        for p in [1usize, 2, 5] {
            let mut arena = Arena::new();
            let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
            let line = topo.cacheline_bytes();
            let progress = arena.alloc_padded_u32_array(p, line);
            let mem = HostMem::new(&arena);
            std::thread::scope(|s| {
                for tid in 0..p {
                    let mem = Arc::clone(&mem);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let ctx = mem.ctx(tid, p);
                        run_episodes(&*barrier, &ctx, progress, line, 25);
                    });
                }
            });
        }
    }
}

#[test]
fn barrier_reuse_across_many_episodes() {
    // Epoch wrap-robustness at small scale: hundreds of reuses of one
    // barrier instance, mixing compute lengths so arrivals interleave
    // differently every episode.
    let topo = Arc::new(Topology::preset(Platform::ThunderX2));
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(AlgorithmId::Optimized.build(&mut arena, 16, &topo));
    SimBuilder::new(topo, 16)
        .run(move |ctx| {
            for e in 0..300u32 {
                ctx.compute_ns(((ctx.tid() as u32 * 37 + e * 13) % 200) as f64);
                barrier.wait(ctx);
            }
        })
        .unwrap();
}

#[test]
fn same_arena_hosts_multiple_barriers() {
    // Two different barriers allocated from one arena must not interfere.
    let topo = Arc::new(Topology::preset(Platform::Phytium2000Plus));
    let mut arena = Arena::new();
    let a: Arc<dyn Barrier> = Arc::from(AlgorithmId::Mcs.build(&mut arena, 8, &topo));
    let b: Arc<dyn Barrier> = Arc::from(AlgorithmId::Dissemination.build(&mut arena, 8, &topo));
    SimBuilder::new(topo, 8)
        .run(move |ctx| {
            for _ in 0..5 {
                a.wait(ctx);
                b.wait(ctx);
            }
        })
        .unwrap();
}

//! Failure injection: the simulator must *diagnose* broken synchronization
//! rather than hang — deadlocked barriers, panicking participants, and
//! live-locked programs all surface as typed errors.

use std::sync::Arc;

use armbar::core::prelude::*;
use armbar::simcoh::{Arena, SimBuilder, SimError};
use armbar::{Platform, Topology};

/// A deliberately broken "barrier": the last arrival forgets to release
/// the waiters (a classic lost-wakeup bug).
struct LostWakeupBarrier {
    counter: u32,
    gsense: u32,
}

impl LostWakeupBarrier {
    fn new(arena: &mut Arena) -> Self {
        Self { counter: arena.alloc_padded_u32(64), gsense: arena.alloc_padded_u32(64) }
    }
}

impl Barrier for LostWakeupBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads() as u32;
        let prev = ctx.fetch_add(self.counter, 1);
        if prev == p - 1 {
            // BUG: should store to gsense here. Everyone else spins forever.
        } else {
            ctx.spin_until_eq(self.gsense, 1);
        }
    }
    fn name(&self) -> &str {
        "broken"
    }
}

#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    let topo = Arc::new(Topology::preset(Platform::ThunderX2));
    let mut arena = Arena::new();
    let barrier = Arc::new(LostWakeupBarrier::new(&mut arena));
    let err = SimBuilder::new(topo, 8).run(move |ctx| barrier.wait(ctx)).unwrap_err();
    match err {
        SimError::Deadlock { waiters } => assert_eq!(waiters.len(), 7),
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn wrong_epoch_direction_deadlocks_not_hangs() {
    // Waiting for a value that can only move away from the predicate.
    let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
    let mut arena = Arena::new();
    let flag = arena.alloc_padded_u32(128);
    let err = SimBuilder::new(topo, 2)
        .run(move |ctx| {
            if ctx.tid() == 0 {
                ctx.store(flag, 5);
            } else {
                ctx.spin_until(flag, |v| v == 4 && v == 5); // unsatisfiable
            }
        })
        .unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
}

#[test]
fn participant_panic_is_attributed() {
    let topo = Arc::new(Topology::preset(Platform::Phytium2000Plus));
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(AlgorithmId::Mcs.build(&mut arena, 4, &topo));
    let err = SimBuilder::new(topo, 4)
        .run(move |ctx| {
            if ctx.tid() == 2 {
                panic!("injected failure in participant 2");
            }
            barrier.wait(ctx);
        })
        .unwrap_err();
    match err {
        SimError::ThreadPanic { tid, message } => {
            assert_eq!(tid, 2);
            assert!(message.contains("injected failure"));
        }
        other => panic!("expected panic report, got {other}"),
    }
}

#[test]
fn runaway_loop_hits_the_op_budget() {
    let topo = Arc::new(Topology::preset(Platform::ThunderX2));
    let mut arena = Arena::new();
    let flag = arena.alloc_padded_u32(64);
    let err = SimBuilder::new(topo, 2)
        .op_budget(5_000)
        .run(move |ctx| {
            if ctx.tid() == 0 {
                loop {
                    ctx.fetch_add(flag, 2); // never produces an odd value
                }
            } else {
                ctx.spin_until(flag, |v| v % 2 == 1);
            }
        })
        .unwrap_err();
    assert!(matches!(err, SimError::OpBudgetExhausted { .. }), "{err}");
}

#[test]
fn undersubscribed_barrier_deadlocks_cleanly() {
    // Building a barrier for 8 but running it with 4 threads: the episode
    // can never complete, and the simulator must say so.
    let topo = Arc::new(Topology::preset(Platform::ThunderX2));
    let mut arena = Arena::new();
    // NB: build for 8 participants...
    let barrier: Arc<dyn Barrier> = Arc::from(AlgorithmId::Sense.build(&mut arena, 8, &topo));
    // ...but `wait` sees nthreads() == 4 via the contexts, so the SENSE
    // counter target (4) disagrees with the other participants' view only
    // if the implementation misused its construction-time P. Run a
    // stricter variant: a combining tree built for 8 genuinely needs 8.
    let mut arena2 = Arena::new();
    let cmb: Arc<dyn Barrier> = Arc::from(AlgorithmId::Combining.build(&mut arena2, 8, &topo));
    let _ = barrier;
    let err = SimBuilder::new(topo, 4).run(move |ctx| cmb.wait(ctx)).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
}

//! Failure injection: *both* backends must diagnose broken synchronization
//! rather than hang. The simulator reports deadlocked barriers, panicking
//! participants, and live-locked programs as typed `SimError`s; the host
//! turns the same failures into typed `BarrierError`s via `RobustBarrier`
//! deadlines and poisoning; and the seeded chaos matrix replays the whole
//! story deterministically.

use std::sync::Arc;
use std::time::{Duration, Instant};

use armbar::core::prelude::*;
use armbar::core::HostMem;
use armbar::faults::{chaos_matrix, render_csv, Backend, ChaosConfig, Scenario};
use armbar::simcoh::{Arena, SimBuilder, SimError};
use armbar::{Platform, Topology};

/// A deliberately broken "barrier": the last arrival forgets to release
/// the waiters (a classic lost-wakeup bug).
struct LostWakeupBarrier {
    counter: u32,
    gsense: u32,
}

impl LostWakeupBarrier {
    fn new(arena: &mut Arena) -> Self {
        Self { counter: arena.alloc_padded_u32(64), gsense: arena.alloc_padded_u32(64) }
    }
}

impl Barrier for LostWakeupBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads() as u32;
        let prev = ctx.fetch_add(self.counter, 1);
        if prev == p - 1 {
            // BUG: should store to gsense here. Everyone else spins forever.
        } else {
            ctx.spin_until_eq(self.gsense, 1);
        }
    }
    fn name(&self) -> &str {
        "broken"
    }
}

#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    let topo = Arc::new(Topology::preset(Platform::ThunderX2));
    let mut arena = Arena::new();
    let barrier = Arc::new(LostWakeupBarrier::new(&mut arena));
    let err = SimBuilder::new(topo, 8).run(move |ctx| barrier.wait(ctx)).unwrap_err();
    match err {
        SimError::Deadlock { waiters } => assert_eq!(waiters.len(), 7),
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn wrong_epoch_direction_deadlocks_not_hangs() {
    // Waiting for a value that can only move away from the predicate.
    let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
    let mut arena = Arena::new();
    let flag = arena.alloc_padded_u32(128);
    let err = SimBuilder::new(topo, 2)
        .run(move |ctx| {
            if ctx.tid() == 0 {
                ctx.store(flag, 5);
            } else {
                ctx.spin_until(flag, |v| v == 4 && v == 5); // unsatisfiable
            }
        })
        .unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
}

#[test]
fn participant_panic_is_attributed() {
    let topo = Arc::new(Topology::preset(Platform::Phytium2000Plus));
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(AlgorithmId::Mcs.build(&mut arena, 4, &topo));
    let err = SimBuilder::new(topo, 4)
        .run(move |ctx| {
            if ctx.tid() == 2 {
                panic!("injected failure in participant 2");
            }
            barrier.wait(ctx);
        })
        .unwrap_err();
    match err {
        SimError::ThreadPanic { tid, message, .. } => {
            assert_eq!(tid, 2);
            assert!(message.contains("injected failure"));
        }
        other => panic!("expected panic report, got {other}"),
    }
}

#[test]
fn runaway_loop_hits_the_op_budget() {
    let topo = Arc::new(Topology::preset(Platform::ThunderX2));
    let mut arena = Arena::new();
    let flag = arena.alloc_padded_u32(64);
    let err = SimBuilder::new(topo, 2)
        .op_budget(5_000)
        .run(move |ctx| {
            if ctx.tid() == 0 {
                loop {
                    ctx.fetch_add(flag, 2); // never produces an odd value
                }
            } else {
                ctx.spin_until(flag, |v| v % 2 == 1);
            }
        })
        .unwrap_err();
    assert!(matches!(err, SimError::OpBudgetExhausted { .. }), "{err}");
}

#[test]
fn host_lost_wakeup_times_out_within_the_deadline() {
    // The same broken barrier, on real threads: without RobustBarrier this
    // spins forever; with it, the hang becomes a typed Timeout and the
    // poison releases the rest of the team long before their own deadlines.
    let p = 4;
    let deadline = Duration::from_millis(300);
    let topo = Topology::preset(Platform::Kunpeng920);
    let mut arena = Arena::new();
    let inner: Box<dyn Barrier> = Box::new(LostWakeupBarrier::new(&mut arena));
    let robust = RobustBarrier::new(
        &mut arena,
        topo.cacheline_bytes(),
        inner,
        RobustConfig { deadline, ..RobustConfig::default() },
    );
    let mem = HostMem::new(&arena);

    let start = Instant::now();
    let results: Vec<Result<(), BarrierError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|tid| {
                let robust = &robust;
                let mem = Arc::clone(&mem);
                s.spawn(move || robust.wait(&mem.ctx(tid, p)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    // The non-releasing last arrival sails through; everyone else fails
    // typed: at least one primary Timeout, the rest fail fast as Poisoned.
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 1);
    assert!(results.iter().any(|r| matches!(r, Err(BarrierError::Timeout { .. }))), "{results:?}");
    for r in &results {
        assert!(
            !matches!(r, Err(BarrierError::Timeout { spins: 0, .. })),
            "a timeout must report its failed polls: {r:?}"
        );
    }
    // One deadline (plus scheduling slack), not one deadline per waiter.
    assert!(elapsed < deadline * 4, "took {elapsed:?} for a {deadline:?} deadline");
}

#[test]
fn host_crashed_participant_poisons_the_waiters() {
    let p = 4;
    let topo = Topology::preset(Platform::Kunpeng920);
    let mut arena = Arena::new();
    let inner = AlgorithmId::Mcs.build(&mut arena, p, &topo);
    let robust = RobustBarrier::new(
        &mut arena,
        topo.cacheline_bytes(),
        inner,
        RobustConfig { deadline: Duration::from_secs(5), ..RobustConfig::default() },
    );
    let mem = HostMem::new(&arena);

    let results: Vec<Option<Result<(), BarrierError>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|tid| {
                let robust = &robust;
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let ctx = mem.ctx(tid, p);
                    let guard = robust.guard(&ctx);
                    if tid == 2 {
                        panic!("injected failure in participant 2");
                    }
                    let r = robust.wait(&ctx);
                    guard.disarm();
                    r
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().ok()).collect()
    });

    assert!(results[2].is_none(), "the crasher itself must unwind");
    for (tid, r) in results.iter().enumerate().filter(|&(tid, _)| tid != 2) {
        match r {
            Some(Err(BarrierError::Poisoned { by: 2, .. })) => {}
            other => panic!("t{tid}: expected Poisoned by t2, got {other:?}"),
        }
    }
    let probe = mem.ctx(0, p);
    assert_eq!(robust.poisoned_by(&probe), Some(2));
}

#[test]
fn chaos_matrix_replays_byte_identically() {
    // The acceptance smoke: same seed, same survival table, bit for bit —
    // and every algorithm absorbs the survivable scenarios.
    let config = ChaosConfig {
        platforms: vec![Platform::Kunpeng920, Platform::ThunderX2],
        scenarios: Scenario::SURVIVABLE.to_vec(),
        backends: vec![Backend::Sim],
        threads: 8,
        ..ChaosConfig::default()
    };
    let first = chaos_matrix(&config);
    let algos = AlgorithmId::ALL.len() + AlgorithmId::CONTENDERS.len();
    assert_eq!(first.len(), 2 * algos * Scenario::SURVIVABLE.len());
    for cell in &first {
        assert!(
            matches!(cell.status(), "ok" | "recovered"),
            "{}/{} on {}: {:?}",
            cell.algorithm.label(),
            cell.scenario,
            cell.platform.label(),
            cell.outcome
        );
    }
    let a = render_csv(&first, &config);
    let b = render_csv(&chaos_matrix(&config), &config);
    assert_eq!(a, b, "same seed must reproduce the same survival table");
}

#[test]
fn undersubscribed_barrier_deadlocks_cleanly() {
    // Building a barrier for 8 but running it with 4 threads: the episode
    // can never complete, and the simulator must say so.
    let topo = Arc::new(Topology::preset(Platform::ThunderX2));
    let mut arena = Arena::new();
    // NB: build for 8 participants...
    let barrier: Arc<dyn Barrier> = Arc::from(AlgorithmId::Sense.build(&mut arena, 8, &topo));
    // ...but `wait` sees nthreads() == 4 via the contexts, so the SENSE
    // counter target (4) disagrees with the other participants' view only
    // if the implementation misused its construction-time P. Run a
    // stricter variant: a combining tree built for 8 genuinely needs 8.
    let mut arena2 = Arena::new();
    let cmb: Arc<dyn Barrier> = Arc::from(AlgorithmId::Combining.build(&mut arena2, 8, &topo));
    let _ = barrier;
    let err = SimBuilder::new(topo, 4).run(move |ctx| cmb.wait(ctx)).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
}

//! The experiment pipelines run end-to-end at reduced scale and produce
//! well-formed, serializable reports for every paper artifact.

use armbar_experiments::{figs, Report, Scale};

fn check_reports(reports: &[Report], expected_panels: usize) {
    assert_eq!(reports.len(), expected_panels);
    for r in reports {
        assert!(!r.rows.is_empty(), "{}: no rows", r.title);
        for row in &r.rows {
            assert_eq!(row.len(), r.columns.len(), "{}: ragged row", r.title);
        }
        // CSV round-trip sanity: header + all rows present.
        let csv = r.to_csv();
        let data_lines = csv.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(data_lines, r.rows.len() + 1, "{}: csv shape", r.title);
        // Render never panics and contains the title.
        assert!(r.render().contains(&r.title));
    }
}

#[test]
fn tables_1_2_3_pipeline() {
    check_reports(&figs::tables_1_2_3::run(&Scale::quick()), 3);
}

#[test]
fn fig05_pipeline() {
    check_reports(&figs::fig05::run(&Scale::quick()), 1);
}

#[test]
fn fig06_pipeline() {
    check_reports(&figs::fig06::run(&Scale::quick()), 2);
}

#[test]
fn fig07_pipeline() {
    check_reports(&figs::fig07::run(&Scale::quick()), 4);
}

#[test]
fn fig11_pipeline() {
    check_reports(&figs::fig11::run(&Scale::quick()), 3);
}

#[test]
fn fig12_pipeline() {
    check_reports(&figs::fig12::run(&Scale::quick()), 3);
}

#[test]
fn fig13_pipeline() {
    check_reports(&figs::fig13::run(&Scale::quick()), 1);
}

#[test]
fn table4_pipeline() {
    let reports = figs::table4::run(&Scale::quick());
    check_reports(&reports, 1);
    // Three baselines, each with four speedup cells ending in 'x'.
    assert_eq!(reports[0].rows.len(), 3);
    for row in &reports[0].rows {
        for cell in &row[1..] {
            assert!(cell.ends_with('x'), "{cell}");
            let v: f64 = cell.trim_end_matches('x').parse().unwrap();
            assert!(v > 1.0, "speedup {v} ≤ 1 in {row:?}");
        }
    }
}

#[test]
fn model_report_pipeline() {
    check_reports(&figs::model_report::run(&Scale::quick()), 2);
}

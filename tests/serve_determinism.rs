//! The coordination server's sharding and worker fan-out are invisible in
//! its per-tenant outcomes: a seeded load run renders a byte-identical
//! episode-outcome table at any `--shards`/`--jobs`, and a connection
//! dropped mid-episode lands the team `degraded` without hanging or
//! poisoning the survivors (the convention of `sweep_determinism.rs`,
//! extended to the serve crate).

use std::sync::atomic::{AtomicU32, Ordering::SeqCst};
use std::time::Duration;

use armbar_serve::{outcome_csv, outcome_json, run_load, LoadConfig, Registry, TeamConfig};

fn seeded() -> LoadConfig {
    LoadConfig {
        teams: 120,
        members: 4,
        episodes: 6_000,
        drop_frac: 0.1,
        seed: 0xD15C0,
        ..LoadConfig::default()
    }
}

#[test]
fn outcome_csv_is_byte_identical_across_shard_counts() {
    let one = outcome_csv(&run_load(&LoadConfig { shards: 1, ..seeded() }));
    let four = outcome_csv(&run_load(&LoadConfig { shards: 4, ..seeded() }));
    assert!(!one.is_empty());
    assert_eq!(one, four, "shard count leaked into the tenant table");
}

#[test]
fn outcome_csv_is_byte_identical_across_worker_counts() {
    let serial = run_load(&LoadConfig { workers: 1, ..seeded() });
    let parallel = run_load(&LoadConfig { workers: 4, ..seeded() });
    assert_eq!(outcome_csv(&serial), outcome_csv(&parallel), "worker count leaked");
    assert_eq!(outcome_json(&serial), outcome_json(&parallel));
    // The dropped tenants are plan-determined, so both runs agree exactly.
    let degraded = outcome_csv(&serial).matches(",degraded").count();
    assert!(degraded > 0, "10% drop fraction must degrade some tenants");
}

#[test]
fn connection_drop_mid_episode_degrades_without_hanging_survivors() {
    // Three members arrive over threads; one drops its connection between
    // arriving for epoch 1 and epoch 2. The survivors must finish every
    // episode (the drop is proxied, never timed out), the team must end
    // `degraded`, and nobody may see a poison error.
    let reg =
        Registry::new(2, TeamConfig { deadline: Duration::from_secs(20), ..Default::default() });
    let team = reg.register("drops-mid-episode", 3).unwrap();
    let epochs: u32 = 12;
    let failures = AtomicU32::new(0);
    std::thread::scope(|s| {
        for member in 0..3 {
            let conn = team.connect().unwrap();
            let failures = &failures;
            s.spawn(move || {
                if member == 2 {
                    conn.arrive_and_wait().unwrap(); // completes epoch 1...
                    drop(conn); // ...then the connection dies abruptly
                    return;
                }
                for _ in 0..epochs {
                    if conn.arrive_and_wait().is_err() {
                        failures.fetch_add(1, SeqCst);
                        return;
                    }
                }
                conn.close();
            });
        }
    });
    assert_eq!(failures.load(SeqCst), 0, "survivors must not time out or poison");
    assert_eq!(team.status(), "degraded", "an abrupt drop must mark the team");
    let m = team.metrics();
    assert_eq!(m.episodes, u64::from(epochs), "every episode completed");
    assert_eq!(m.drops, 1);
    assert_eq!(team.members(), 0, "survivors closed; team drained");
    assert!(team.retired());
    assert_eq!(reg.sweep_retired(), 1);
}

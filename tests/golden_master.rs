//! Golden-master regression: the simulator's model output is pinned
//! byte-for-byte.
//!
//! The fixture under `tests/fixtures/` is a quick-scale `algo_curve` CSV for
//! phytium2000p × {SENSE, STOUR, DIS} on the canonical seed schedule,
//! rendered with Rust's default (shortest round-trip) `f64` formatting. Any
//! engine or topology change that shifts a single bit of any overhead value
//! changes a byte here and fails the test — performance refactors must
//! reproduce the model's output exactly, not approximately.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_master
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use armbar_core::prelude::AlgorithmId;
use armbar_experiments::{
    runner::{algo_curve_on, topo},
    Scale,
};
use armbar_sweep::SweepPool;
use armbar_topology::Platform;

const ALGOS: [AlgorithmId; 3] =
    [AlgorithmId::Sense, AlgorithmId::Stour, AlgorithmId::Dissemination];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden_algo_curve_phytium_quick.csv")
}

/// Renders the golden curves. Serial pool — the sweep-determinism suite
/// already proves parallel pools produce identical bytes.
fn render_golden_csv() -> String {
    let t = topo(Platform::Phytium2000Plus);
    let scale = Scale::quick();
    let pool = SweepPool::new(1);
    let mut csv = String::from("algorithm,threads,overhead_ns\n");
    for id in ALGOS {
        for (p, ns) in algo_curve_on(&pool, &t, id, &scale) {
            writeln!(csv, "{},{},{}", id.label(), p, ns).unwrap();
        }
    }
    csv
}

#[test]
fn model_output_matches_committed_fixture_byte_for_byte() {
    let path = fixture_path();
    let fresh = render_golden_csv();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &fresh).expect("failed to write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); run with GOLDEN_REGEN=1", path.display())
    });
    assert_eq!(
        fresh, committed,
        "simulator output diverged from the golden master; if the model \
         change is intentional, regenerate with GOLDEN_REGEN=1"
    );
}

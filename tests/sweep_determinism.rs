//! The parallel sweep engine is invisible in the output: any worker count
//! produces byte-identical results files, and seed-matched measurement
//! paths stay point-for-point comparable.

use std::sync::Arc;

use armbar_core::prelude::*;
use armbar_experiments::runner::{algo_curve_on, fway_curve_on, topo};
use armbar_experiments::{figs, Scale};
use armbar_faults::{chaos_matrix_on, render_csv, render_json, ChaosConfig};
use armbar_sweep::{Job, SweepPool};
use armbar_topology::Platform;

/// A quick-scale figure pipeline rendered to CSV under a pinned ambient
/// worker count.
fn fig07_csv(jobs: usize) -> String {
    armbar_sweep::set_global_jobs(jobs);
    figs::fig07::run(&Scale::quick()).iter().map(|r| r.to_csv()).collect()
}

#[test]
fn quick_scale_figure_csv_is_byte_identical_across_worker_counts() {
    let serial = fig07_csv(1);
    let parallel = fig07_csv(4);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "worker count leaked into figure output");
}

#[test]
fn curves_are_byte_identical_across_worker_counts() {
    let scale = Scale::quick();
    for platform in [Platform::Phytium2000Plus, Platform::Kunpeng920] {
        let t = topo(platform);
        let serial = algo_curve_on(&SweepPool::new(1), &t, AlgorithmId::Optimized, &scale);
        let parallel = algo_curve_on(&SweepPool::new(4), &t, AlgorithmId::Optimized, &scale);
        assert_eq!(serial, parallel, "{platform:?}");

        let config = FwayConfig::stour();
        let serial = fway_curve_on(&SweepPool::new(1), &t, config, &scale);
        let parallel = fway_curve_on(&SweepPool::new(4), &t, config, &scale);
        assert_eq!(serial, parallel, "{platform:?}");
    }
}

#[test]
fn chaos_renderings_are_byte_identical_across_worker_counts() {
    let config = ChaosConfig {
        algorithms: vec![AlgorithmId::Sense, AlgorithmId::Dissemination, AlgorithmId::Optimized],
        threads: 4,
        ..ChaosConfig::default()
    };
    let serial = chaos_matrix_on(&SweepPool::new(1), &config);
    let parallel = chaos_matrix_on(&SweepPool::new(4), &config);
    assert_eq!(render_csv(&serial, &config), render_csv(&parallel, &config));
    assert_eq!(render_json(&serial, &config), render_json(&parallel, &config));
}

#[test]
fn registry_and_custom_fway_curves_are_seed_matched() {
    // Regression for the seed-protocol bug: the registry STOUR curve and
    // the equivalent custom FwayConfig curve must agree exactly, at any
    // worker count, on every platform the paper compares them on.
    let scale = Scale::quick();
    let pool = SweepPool::new(2);
    for platform in Platform::ARM {
        let t = topo(platform);
        let registry = algo_curve_on(&pool, &t, AlgorithmId::Stour, &scale);
        let custom = fway_curve_on(&pool, &t, FwayConfig::stour(), &scale);
        assert_eq!(registry, custom, "{platform:?}");
    }
}

#[test]
fn mixed_serial_and_parallel_jobs_keep_submission_order() {
    // A host-measurement job embedded in a sim sweep must bypass the pool
    // yet land in its submitted slot.
    let t = Arc::new(armbar_topology::Topology::preset(Platform::ThunderX2));
    let t = &t;
    let jobs: Vec<Job<'_, (usize, bool)>> = (0..6)
        .map(|i| {
            if i == 3 {
                Job::serial(move || (i, true))
            } else {
                Job::parallel(move || {
                    let ns = armbar_epcc::sim_overhead_ns(
                        t,
                        4,
                        AlgorithmId::Dissemination,
                        armbar_epcc::OverheadConfig { episodes: 4, ..Default::default() },
                    )
                    .unwrap();
                    (i, ns >= 0.0)
                })
            }
        })
        .collect();
    let results = SweepPool::new(3).run(jobs);
    assert_eq!(results.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    assert!(results.iter().all(|&(_, ok)| ok));
}

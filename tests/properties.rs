//! Cross-crate property tests: random machine shapes, thread counts and
//! algorithm choices must never break a barrier, and simulation must stay
//! deterministic.

use std::sync::Arc;

use proptest::prelude::*;

use armbar::core::prelude::*;
use armbar::simcoh::{arena::padded_elem, Arena, SimBuilder};
use armbar::{Topology, TopologyBuilder};

/// A random two-level clustered machine.
fn arb_topology() -> impl Strategy<Value = Arc<Topology>> {
    (1u32..4, 1u32..4, 2.0f64..50.0, 10.0f64..150.0, 0.0f64..1.0, 0.0f64..15.0).prop_map(
        |(inner_log, fan_log, l0, extra, alpha, inv)| {
            let inner = 1usize << inner_log;
            let cores = (inner << fan_log).max(2);
            Arc::new(
                TopologyBuilder::new("prop-machine", cores)
                    .epsilon_ns(1.0)
                    .layer("near", l0, alpha)
                    .layer("far", l0 + extra, alpha)
                    .hierarchy(&[inner])
                    .coherence(inv, inv / 2.0, 0.1)
                    .noc_ns(1.0)
                    .build(),
            )
        },
    )
}

fn arb_algorithm() -> impl Strategy<Value = AlgorithmId> {
    prop::sample::select(AlgorithmId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Any algorithm on any random machine with any admissible thread
    /// count completes and upholds the episode invariant.
    #[test]
    fn any_algorithm_on_any_machine(
        topo in arb_topology(),
        id in arb_algorithm(),
        pfrac in 0.1f64..=1.0,
        seed in 0u64..1000,
    ) {
        let p = ((topo.num_cores() as f64 * pfrac).round() as usize).clamp(1, topo.num_cores());
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
        let line = topo.cacheline_bytes();
        let progress = arena.alloc_padded_u32_array(p, line);
        SimBuilder::new(Arc::clone(&topo), p)
            .seed(seed)
            .run(move |ctx| {
                let me = ctx.tid();
                for e in 1..=2u32 {
                    ctx.store(padded_elem(progress, me, line), e);
                    barrier.wait(ctx);
                    for peer in 0..ctx.nthreads() {
                        let seen = ctx.load(padded_elem(progress, peer, line));
                        // A failed assert panics the simulated thread; the
                        // engine reports it and the outer unwrap fails the
                        // proptest case.
                        assert!(seen >= e, "t{me} at {e}, t{peer} at {seen}");
                    }
                }
            })
            .unwrap_or_else(|e| panic!("{id} p={p}: {e}"));
    }

    /// Same seed ⇒ bit-identical virtual times; the host scheduler must
    /// not leak into results.
    #[test]
    fn simulation_is_deterministic(
        topo in arb_topology(),
        id in arb_algorithm(),
        seed in 0u64..1000,
    ) {
        let p = topo.num_cores().min(16);
        let run = || {
            let mut arena = Arena::new();
            let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
            SimBuilder::new(Arc::clone(&topo), p)
                .seed(seed)
                .run(move |ctx| {
                    for _ in 0..3 {
                        ctx.compute_ns(50.0);
                        barrier.wait(ctx);
                    }
                })
                .unwrap()
                .per_thread_time_ns()
                .to_vec()
        };
        prop_assert_eq!(run(), run());
    }
}

//! End-to-end assertions of the paper's headline claims, at reduced scale
//! (DESIGN.md §4 "Expected shapes"). These are the workspace's acceptance
//! tests: if a refactor silently breaks the modeled physics or an
//! algorithm's structure, a claim below fails.

use std::sync::Arc;

use armbar::core::prelude::*;
use armbar::epcc::{sim_overhead_ns, OverheadConfig};
use armbar::{Platform, Topology};

fn topo(p: Platform) -> Arc<Topology> {
    Arc::new(Topology::preset(p))
}

fn overhead(t: &Arc<Topology>, p: usize, id: AlgorithmId) -> f64 {
    sim_overhead_ns(t, p, id, OverheadConfig { episodes: 20, ..Default::default() }).unwrap()
}

#[test]
fn sense_is_several_times_slower_on_arm_than_on_xeon() {
    // Figure 5's motivation at 32 threads.
    let xeon = overhead(&topo(Platform::XeonGold), 32, AlgorithmId::Sense);
    for platform in Platform::ARM {
        let arm = overhead(&topo(platform), 32, AlgorithmId::Sense);
        assert!(arm > 2.0 * xeon, "{platform}: {arm} vs Xeon {xeon}");
    }
    let tx2 = overhead(&topo(Platform::ThunderX2), 32, AlgorithmId::Sense);
    assert!(tx2 > 4.0 * xeon, "ThunderX2 must be the worst: {tx2} vs {xeon}");
}

#[test]
fn optimized_barrier_beats_gcc_by_an_order_of_magnitude() {
    // Table IV, GCC row (paper: 8x–23x).
    for platform in Platform::ARM {
        let t = topo(platform);
        let gcc = overhead(&t, 64, AlgorithmId::Sense);
        let opt = overhead(&t, 64, AlgorithmId::Optimized);
        let speedup = gcc / opt;
        assert!(speedup > 6.0, "{platform}: GCC speedup only {speedup:.1}x");
    }
}

#[test]
fn optimized_barrier_beats_llvm() {
    // Table IV, LLVM row (paper: 2.5x–9x).
    for platform in Platform::ARM {
        let t = topo(platform);
        let llvm = overhead(&t, 64, AlgorithmId::LlvmHyper);
        let opt = overhead(&t, 64, AlgorithmId::Optimized);
        let speedup = llvm / opt;
        assert!(speedup > 1.5, "{platform}: LLVM speedup only {speedup:.1}x");
    }
}

#[test]
fn optimized_barrier_beats_every_existing_algorithm_at_full_width() {
    // Table IV, state-of-the-art row (paper: 1.4x–1.8x).
    for platform in Platform::ARM {
        let t = topo(platform);
        let opt = overhead(&t, 64, AlgorithmId::Optimized);
        for id in AlgorithmId::SEVEN {
            let v = overhead(&t, 64, id);
            assert!(v > opt, "{platform}: {id} ({v:.0} ns) beat OPT ({opt:.0} ns)");
        }
    }
}

#[test]
fn dissemination_spikes_when_crossing_cluster_boundaries() {
    // Section IV-B: once P > N_c, DIS pays remote traffic every round.
    // On ThunderX2 (N_c = 32) the 32→33 step is dramatic.
    let t = topo(Platform::ThunderX2);
    let at32 = overhead(&t, 32, AlgorithmId::Dissemination);
    let at33 = overhead(&t, 33, AlgorithmId::Dissemination);
    assert!(at33 > 1.8 * at32, "DIS 32→33: {at32:.0} → {at33:.0} ns");
}

#[test]
fn dissemination_loses_to_tournament_at_scale() {
    for platform in Platform::ARM {
        let t = topo(platform);
        let dis = overhead(&t, 64, AlgorithmId::Dissemination);
        let tour = overhead(&t, 64, AlgorithmId::Tournament);
        assert!(dis > tour, "{platform}: DIS {dis:.0} vs TOUR {tour:.0}");
    }
}

#[test]
fn sense_grows_roughly_linearly() {
    // Figure 7(a): near-linear growth (between linear and gently
    // superlinear; far from the quadratic a naive crowd model would give).
    let t = topo(Platform::ThunderX2);
    let a = overhead(&t, 16, AlgorithmId::Sense);
    let b = overhead(&t, 32, AlgorithmId::Sense);
    let c = overhead(&t, 64, AlgorithmId::Sense);
    assert!(b / a > 1.6 && b / a < 4.0, "16→32 growth {:.2}", b / a);
    assert!(c / b > 1.6 && c / b < 4.5, "32→64 growth {:.2}", c / b);
}

#[test]
fn kunpeng_is_the_noisy_platform() {
    // The paper reports dramatic fluctuation on Kunpeng 920. Compare the
    // spread of repeated measurements across seeds.
    use armbar::epcc::repeat_sim;
    let cfg = OverheadConfig { episodes: 20, ..Default::default() };
    let kp = repeat_sim(&topo(Platform::Kunpeng920), 32, AlgorithmId::Stour, cfg, 8).unwrap();
    let phy = repeat_sim(&topo(Platform::Phytium2000Plus), 32, AlgorithmId::Stour, cfg, 8).unwrap();
    assert!(
        kp.cv() > 2.0 * phy.cv(),
        "Kunpeng cv {:.3} should dwarf Phytium cv {:.3}",
        kp.cv(),
        phy.cv()
    );
}

#[test]
fn single_thread_barriers_are_nearly_free_everywhere() {
    for platform in Platform::ARM {
        let t = topo(platform);
        for id in AlgorithmId::ALL {
            let v = overhead(&t, 1, id);
            assert!(v < 600.0, "{platform}/{id}: P=1 overhead {v:.0} ns");
        }
    }
}

//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `proptest` its tests use: the [`Strategy`] trait with
//! `prop_map`, strategies over integer/float ranges, tuples, uniform
//! selection and `any::<bool>()`, the `proptest!` macro, and the
//! `prop_assert!`/`prop_assert_eq!` assertion forms.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * sampling is **deterministic** — each test function derives its RNG
//!   seed from its own name, so failures reproduce exactly across runs
//!   and machines (the simulator underneath is deterministic too);
//! * there is **no shrinking** — a failing case reports its case number
//!   and message and panics immediately.

/// Runner plumbing: deterministic RNG, failure type, per-test state.
pub mod test_runner {
    /// SplitMix64 — small, fast, and good enough for test-case sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates an RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            Self(seed)
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a test case failed (assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            Self(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test-function sampling state.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner whose RNG seed is derived from `name`, so every
        /// run of a given test samples the same cases.
        pub fn new(name: &str) -> Self {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            Self { rng: TestRng::from_seed(h) }
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

use test_runner::TestRng;

/// Test-loop configuration (`cases` is the only knob this subset honors;
/// `max_shrink_iters` is accepted for upstream compatibility and ignored
/// because this subset reports failing inputs without shrinking them).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per test function.
    pub cases: u32,
    /// Upstream shrink budget; unused here (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 1024 }
    }
}

/// A source of values for one test argument.
pub trait Strategy {
    /// The type of the produced values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategies!(usize, u8, u16, u32, u64, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Constructs the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Canonical strategy for `bool`: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Sampling from explicit collections.
    pub mod sample {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Strategy drawing uniformly from a fixed vector.
        #[derive(Debug, Clone)]
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                let i = (rng.next_u64() % self.0.len() as u64) as usize;
                self.0[i].clone()
            }
        }

        /// Uniform selection from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select(options)
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples `config.cases` argument tuples and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), runner.rng());)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// The glob-import surface used by tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut runner = crate::test_runner::TestRunner::new("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..10), runner.rng());
            assert!((3..10).contains(&v));
            let w = Strategy::sample(&(5u32..=7), runner.rng());
            assert!((5..=7).contains(&w));
            let f = Strategy::sample(&(1.5f64..2.5), runner.rng());
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn select_and_map_compose() {
        let mut runner = crate::test_runner::TestRunner::new("select");
        let s = prop::sample::select(vec![1u32, 2, 3]).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.sample(runner.rng());
            assert!([10, 20, 30].contains(&v));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRunner::new("same");
        let mut b = crate::test_runner::TestRunner::new("same");
        for _ in 0..10 {
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// The macro itself: tuple strategies + prop_assert forms.
        #[test]
        fn macro_generates_runnable_tests(
            x in 0usize..100,
            flip in any::<bool>(),
            (lo, hi) in (0u32..50, 50u32..100),
        ) {
            prop_assert!(x < 100);
            prop_assert!(lo < hi, "lo {lo} must stay below hi {hi}");
            prop_assert_eq!(flip as u32 * 2, if flip { 2 } else { 0 });
        }
    }
}

//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `criterion` its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with the chainable configuration methods,
//! [`BenchmarkId`], [`Throughput`], the [`Bencher::iter`] loop, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Two execution modes, selected by CLI args (as in real criterion):
//!
//! * **`--test`** (`cargo bench -- --test`): each benchmark body runs
//!   exactly once, unmeasured — the CI smoke mode;
//! * otherwise: a short timed loop per benchmark (warm-up iterations, then
//!   `sample_size` measured iterations) reporting mean wall-clock per
//!   iteration. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Declared work-per-iteration, echoed in reports as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closure inside the timing loop.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `--test`: run once, no timing.
    Smoke,
    /// Timed loop.
    Measure,
}

impl Bencher {
    /// Times `routine` (or runs it once in `--test` mode). The return value
    /// is passed through [`black_box`] so the work is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure => {
                let warmup = self.sample_size.div_ceil(4).max(1);
                for _ in 0..warmup {
                    black_box(routine());
                }
                let start = Instant::now();
                for _ in 0..self.sample_size {
                    black_box(routine());
                }
                self.mean_ns = start.elapsed().as_nanos() as f64 / self.sample_size as f64;
            }
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting bench work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub's warm-up is derived from
    /// `sample_size` rather than wall-clock time.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub always runs exactly
    /// `sample_size` measured iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares work-per-iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        match self.criterion.mode {
            Mode::Smoke => println!("test {}/{id} ... ok", self.name),
            Mode::Measure => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if bencher.mean_ns > 0.0 => {
                        format!("  ({:.1} Melem/s)", n as f64 / bencher.mean_ns * 1e3)
                    }
                    Some(Throughput::Bytes(n)) if bencher.mean_ns > 0.0 => {
                        format!("  ({:.1} MB/s)", n as f64 / bencher.mean_ns * 1e3)
                    }
                    _ => String::new(),
                };
                println!(
                    "{}/{id}: {:.3} us/iter over {} samples{rate}",
                    self.name,
                    bencher.mean_ns / 1e3,
                    self.sample_size
                );
            }
        }
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { mode: Mode::Measure }
    }
}

impl Criterion {
    /// Applies CLI configuration: `--test` switches to run-once smoke mode;
    /// every other flag criterion would accept is ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.mode = Mode::Smoke;
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Bundles benchmark functions under one name, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn measure_mode_runs_and_times() {
        let mut c = Criterion { mode: Mode::Measure };
        sample_bench(&mut c);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut runs = 0u32;
        let mut group = c.benchmark_group("smoke");
        group.bench_with_input(BenchmarkId::from_parameter("once"), &(), |b, _| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}

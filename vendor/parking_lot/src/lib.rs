//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of `parking_lot` it actually uses: [`Mutex`] (whose
//! `lock` returns the guard directly, no poison `Result`) and [`Condvar`]
//! (whose `wait` takes `&mut MutexGuard`). Poisoned mutexes are recovered
//! transparently — the engine owns all panic handling itself.

use std::sync;

/// A mutual-exclusion primitive. `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take
/// ownership of the underlying std guard; the option is always `Some`
/// outside that window.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Recovers from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)))
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during Condvar::wait")
    }
}

/// Outcome of a [`Condvar::wait_for`]: did the wait time out?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically releases the guarded mutex and blocks until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// As [`wait`](Self::wait), but gives up after `timeout`. Returns a
    /// [`WaitTimeoutResult`] so the caller can distinguish a notification
    /// from a timeout (matching the upstream `parking_lot` signature).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (mx, cv) = &*p2;
            let mut g = mx.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (mx, cv) = &*pair;
            *mx.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        let res = pair.1.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn wait_for_returns_on_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (mx, cv) = &*p2;
            let mut g = mx.lock();
            while !*g {
                let _ = cv.wait_for(&mut g, std::time::Duration::from_secs(5));
            }
        });
        {
            let (mx, cv) = &*pair;
            *mx.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}

//! # armbar — barrier synchronization for (and beyond) ARMv8 many-cores
//!
//! Facade crate re-exporting the full workspace: topology models, the
//! cache-coherence latency simulator, all barrier algorithms (including the
//! paper's optimized barrier), the analytical model, and the EPCC-style
//! measurement harness.
//!
//! See the README for a tour, and `examples/quickstart.rs` for the fastest
//! way in.

pub use armbar_conformance as conformance;
pub use armbar_core as core;
pub use armbar_epcc as epcc;
pub use armbar_faults as faults;
pub use armbar_model as model;
pub use armbar_simcoh as simcoh;
pub use armbar_topology as topology;

pub use armbar_core::prelude::*;
pub use armbar_topology::{Platform, Topology, TopologyBuilder};
